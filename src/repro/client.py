"""Thin client for the repro serve daemon.

:class:`ServeClient` speaks the NDJSON protocol over a unix socket or the
HTTP surface of :mod:`repro.serve`; :func:`run_via_server` is the CLI's
``--server`` glue — it ships the invocation to the daemon and replays the
daemon's answer (output text and exit code) as if the command had run
locally, so ``python -m repro --server unix:/tmp/repro.sock estimate ...``
is a drop-in for the one-shot form.

Addresses:

* ``unix:/path/to.sock`` (or a bare path containing ``/``) — unix socket;
* ``http://host:port`` or ``host:port`` — the HTTP listener.
"""

from __future__ import annotations

import json
import socket

from .errors import EXIT_SERVE, ProtocolError, RemoteError, ServeError, error_from_json
from .serve.protocol import decode_line, encode_line

DEFAULT_TIMEOUT = 300.0


def parse_address(address):
    """``("unix", path)`` or ``("http", (host, port))`` from a user string."""
    address = address.strip()
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("http://"):
        rest = address[len("http://"):].rstrip("/")
        host, _, port = rest.partition(":")
        if not port.isdigit():
            raise ServeError("bad HTTP server address %r" % address)
        return "http", (host or "127.0.0.1", int(port))
    host, _, port = address.partition(":")
    if port.isdigit() and "/" not in host:
        return "http", (host or "127.0.0.1", int(port))
    if "/" in address:
        return "unix", address
    raise ServeError(
        "cannot parse server address %r (want unix:/path, /path, "
        "http://host:port, or host:port)" % address
    )


class ServeClient:
    """One connection-per-call client (simple, and the daemon pipelines
    per connection anyway for callers that hold one open)."""

    def __init__(self, address, timeout=DEFAULT_TIMEOUT):
        self.scheme, self.target = parse_address(address)
        self.timeout = timeout
        self._counter = 0
        self._sock_file = None
        self._sock = None

    # -- transport -----------------------------------------------------------

    def _next_id(self):
        self._counter += 1
        return "c%d" % self._counter

    def _unix_connection(self):
        if self._sock_file is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.target)
            except OSError as exc:
                sock.close()
                raise ServeError(
                    "cannot connect to serve daemon at unix:%s (%s)"
                    % (self.target, exc)
                ) from None
            self._sock = sock
            self._sock_file = sock.makefile("rwb")
        return self._sock_file

    def close(self):
        if self._sock_file is not None:
            try:
                self._sock_file.close()
            finally:
                self._sock_file = None
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _roundtrip_unix(self, request):
        stream = self._unix_connection()
        try:
            stream.write(encode_line(request))
            stream.flush()
            line = stream.readline()
        except OSError as exc:
            self.close()
            raise ServeError("serve connection failed: %s" % exc) from None
        if not line:
            self.close()
            raise ServeError(
                "serve daemon closed the connection mid-request"
            )
        return decode_line(line)

    def _roundtrip_http(self, request):
        import http.client

        host, port = self.target
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            try:
                conn.request(
                    "POST", "/rpc", body=encode_line(request),
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                body = response.read()
            except OSError as exc:
                raise ServeError(
                    "cannot reach serve daemon at http://%s:%d (%s)"
                    % (host, port, exc)
                ) from None
        finally:
            conn.close()
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServeError(
                "serve daemon sent an unreadable reply: %s" % exc
            ) from None

    def _get_http(self, path):
        import http.client

        host, port = self.target
        conn = http.client.HTTPConnection(host, port, timeout=self.timeout)
        try:
            conn.request("GET", path)
            body = conn.getresponse().read()
        except OSError as exc:
            raise ServeError(
                "cannot reach serve daemon at http://%s:%d (%s)"
                % (host, port, exc)
            ) from None
        finally:
            conn.close()
        return json.loads(body.decode("utf-8"))

    # -- API -----------------------------------------------------------------

    def call(self, kind, argv=(), deadline=None):
        """One request → the raw reply dict (``ok`` true or false)."""
        request = {"id": self._next_id(), "kind": kind, "argv": list(argv)}
        if deadline is not None:
            request["deadline"] = deadline
        if self.scheme == "unix":
            reply = self._roundtrip_unix(request)
        else:
            reply = self._roundtrip_http(request)
        if not isinstance(reply, dict):
            raise ServeError("serve daemon sent a non-object reply")
        if reply.get("id") not in (request["id"], None):
            raise ServeError(
                "serve daemon answered request %r with id %r"
                % (request["id"], reply.get("id"))
            )
        return reply

    def raise_for_reply(self, reply):
        """``ok: false`` replies → the matching :class:`ReproError`."""
        if reply.get("ok"):
            return reply
        raise error_from_json(reply.get("error") or {})

    def stats(self):
        if self.scheme == "http":
            return self._get_http("/stats")
        reply = self.raise_for_reply(self.call("stats"))
        return reply["stats"]

    def healthz(self):
        if self.scheme == "http":
            return self._get_http("/healthz")
        reply = self.raise_for_reply(self.call("healthz"))
        return reply["healthz"]

    def ping(self):
        return bool(self.raise_for_reply(self.call("ping")).get("pong"))


def run_via_server(address, argv, out):
    """Execute a CLI invocation through a serve daemon (``--server``).

    Mirrors the one-shot CLI exactly when the request executes: the
    daemon's captured output is written verbatim and its exit code
    returned.  Serve-level failures (unreachable daemon, overload, open
    breaker, crashed worker) print ``server error: [code] message`` and
    return the taxonomy exit code.
    """
    if not argv:
        out.write("server error: [bad-request] empty command\n")
        return EXIT_SERVE
    kind, rest = argv[0], list(argv[1:])
    try:
        with ServeClient(address) as client:
            reply = client.call(kind, rest)
    except (ProtocolError, ServeError, RemoteError) as exc:
        out.write("server error: [%s] %s\n" % (exc.code, exc))
        return exc.exit_code
    if reply.get("ok"):
        out.write(reply.get("output", ""))
        exit_code = reply.get("exit_code", 0)
        return exit_code if isinstance(exit_code, int) else EXIT_SERVE
    error = reply.get("error") or {}
    out.write("server error: [%s] %s\n" % (
        error.get("code", "internal"), error.get("message", "unknown"),
    ))
    exit_code = error.get("exit_code", EXIT_SERVE)
    return exit_code if isinstance(exit_code, int) else EXIT_SERVE
