"""Design-space exploration on top of timed TLMs.

The point of fast cycle-approximate TLMs (paper Section 1) is early
exploration: "choosing the optimal platform for a given application and the
optimal mapping of the application to the platform".  This module gives that
workflow a small API: declare candidate design points, evaluate each with an
automatically generated timed TLM, and rank them under an objective and
optional constraints.

Evaluation cost is seconds per point (Table 1), so exhaustive sweeps of
dozens of points are practical where ISS/RTL evaluation would take days.
Points are independent, so :func:`explore` can fan them out over a
``concurrent.futures`` process pool (``workers=N``); results come back in
submission order regardless of completion order, so rankings are
deterministic (see docs/performance.md).
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import time

from .tlm.generator import generate_tlm


class DesignPoint:
    """One candidate: a named design plus bookkeeping metadata.

    ``build`` is a zero-argument callable returning a fresh
    :class:`~repro.tlm.platform.Design` (TLMs mutate nothing, but fresh
    designs keep points independent).  ``area`` is an arbitrary cost proxy
    (the MP3 study uses the number of custom-HW units).
    """

    __slots__ = ("name", "build", "area", "meta")

    def __init__(self, name, build, area=0, meta=None):
        self.name = name
        self.build = build
        self.area = area
        self.meta = dict(meta or {})

    def __repr__(self):
        return "DesignPoint(%r, area=%r)" % (self.name, self.area)


class PointResult:
    """Evaluation outcome of one design point.

    ``tlm_result`` is the full simulation outcome when the point was
    evaluated in-process; points evaluated in a worker process carry only
    the cycle summary (``tlm_result is None``), since simulation state does
    not cross the process boundary.
    """

    __slots__ = ("point", "makespan_cycles", "per_process_cycles",
                 "wall_seconds", "tlm_result")

    def __init__(self, point, tlm_result=None, wall_seconds=0.0,
                 makespan_cycles=None, per_process_cycles=None):
        self.point = point
        if tlm_result is not None:
            self.makespan_cycles = tlm_result.makespan_cycles
            self.per_process_cycles = {
                name: p.cycles for name, p in tlm_result.processes.items()
            }
        else:
            self.makespan_cycles = makespan_cycles
            self.per_process_cycles = dict(per_process_cycles or {})
        self.wall_seconds = wall_seconds
        self.tlm_result = tlm_result

    def __repr__(self):
        return "PointResult(%r: %d cycles)" % (
            self.point.name, self.makespan_cycles,
        )


class ExplorationResult:
    """All evaluated points plus ranking helpers."""

    def __init__(self, results, total_seconds, workers=1):
        self.results = list(results)
        self.total_seconds = total_seconds
        self.workers = workers

    def ranked(self, objective=None):
        """Points sorted best-first by ``objective(result)`` (default:
        makespan cycles)."""
        key = objective or (lambda r: r.makespan_cycles)
        return sorted(self.results, key=key)

    def best(self, objective=None, constraint=None):
        """The best point satisfying ``constraint(result)`` (or ``None``)."""
        for result in self.ranked(objective):
            if constraint is None or constraint(result):
                return result
        return None

    def pareto_front(self):
        """Points not dominated in (makespan, area) — the classic DSE view."""
        front = []
        for candidate in self.results:
            dominated = False
            for other in self.results:
                if other is candidate:
                    continue
                if (other.makespan_cycles <= candidate.makespan_cycles
                        and other.point.area <= candidate.point.area
                        and (other.makespan_cycles < candidate.makespan_cycles
                             or other.point.area < candidate.point.area)):
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda r: (r.point.area, r.makespan_cycles))

    def __len__(self):
        return len(self.results)


# Pre-fork hand-off to worker processes.  Design-point builders are
# closures (not picklable), so the parallel path relies on fork semantics:
# the parent publishes the point list here, forked children inherit it, and
# only integer indices cross the process boundary.
_fork_payload = {}


def _evaluate_point_index(index):
    """Worker-side evaluation of one design point (runs in a forked child)."""
    point = _fork_payload["points"][index]
    granularity = _fork_payload["granularity"]
    design = point.build()
    model = generate_tlm(design, timed=True, granularity=granularity)
    wall_start = time.perf_counter()
    tlm_result = model.run()
    wall = time.perf_counter() - wall_start
    per_process = {
        name: p.cycles for name, p in tlm_result.processes.items()
    }
    return index, tlm_result.makespan_cycles, per_process, wall


def _explore_parallel(points, granularity, workers):
    """Fan the points out over a process pool; ``None`` = not available.

    Requires the ``fork`` start method (closure-based builders cannot be
    pickled for ``spawn``); callers fall back to the sequential path when it
    is missing or the pool cannot be created.
    """
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        return None
    _fork_payload["points"] = points
    _fork_payload["granularity"] = granularity
    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(points)),
            mp_context=mp_context,
        ) as pool:
            payloads = list(
                pool.map(_evaluate_point_index, range(len(points)))
            )
    except (OSError, PermissionError, NotImplementedError):
        return None
    finally:
        _fork_payload.clear()
    # Deterministic ordering: results in submission (= input) order.
    return sorted(payloads, key=lambda payload: payload[0])


def explore(points, granularity="transaction", workers=1):
    """Evaluate every design point with a timed TLM.

    Args:
        points: iterable of :class:`DesignPoint`.
        granularity: sc_wait batching granularity for the TLM runs.
        workers: process-pool width.  ``1`` (the default) evaluates
            sequentially in-process — behaviour identical to earlier
            releases; ``N > 1`` evaluates up to N points concurrently in
            forked workers, falling back to the sequential path on
            platforms without ``fork``.  Either way the result list is in
            input order and every cycle count is identical (simulation is
            deterministic), so rankings do not depend on ``workers``.

    Returns:
        an :class:`ExplorationResult`.
    """
    points = list(points)
    start = time.perf_counter()
    if workers > 1 and len(points) > 1:
        payloads = _explore_parallel(points, granularity, workers)
        if payloads is not None:
            results = [
                PointResult(
                    points[index],
                    wall_seconds=wall,
                    makespan_cycles=makespan,
                    per_process_cycles=per_process,
                )
                for index, makespan, per_process, wall in payloads
            ]
            return ExplorationResult(
                results, time.perf_counter() - start, workers=workers,
            )
    results = []
    for point in points:
        design = point.build()
        model = generate_tlm(design, timed=True, granularity=granularity)
        wall_start = time.perf_counter()
        tlm_result = model.run()
        wall = time.perf_counter() - wall_start
        results.append(PointResult(point, tlm_result, wall))
    return ExplorationResult(results, time.perf_counter() - start)


def mp3_design_points(params=None, n_frames=2, seed=7, cache_configs=None,
                      memory_model=None, branch_model=None):
    """The paper's MP3 design space as ready-made points.

    Variants SW/SW+1/SW+2/SW+4 crossed with the given cache configurations;
    area proxy = number of custom-HW units.
    """
    from .apps.mp3 import VARIANTS, build_design
    from .apps.mp3.source import VARIANT_MAPPINGS

    if cache_configs is None:
        cache_configs = ((8 * 1024, 4 * 1024),)
    points = []
    for variant in VARIANTS:
        for icache, dcache in cache_configs:
            def build(variant=variant, icache=icache, dcache=dcache):
                design, _ = build_design(
                    variant, params, n_frames=n_frames, seed=seed,
                    icache_size=icache, dcache_size=dcache,
                    memory_model=memory_model, branch_model=branch_model,
                )
                return design

            points.append(DesignPoint(
                "%s@%dk/%dk" % (variant, icache // 1024, dcache // 1024),
                build,
                area=len(VARIANT_MAPPINGS[variant]),
                meta={"variant": variant, "icache": icache, "dcache": dcache},
            ))
    return points
