"""Design-space exploration on top of timed TLMs.

The point of fast cycle-approximate TLMs (paper Section 1) is early
exploration: "choosing the optimal platform for a given application and the
optimal mapping of the application to the platform".  This module gives that
workflow a small API: declare candidate design points, evaluate each with an
automatically generated timed TLM, and rank them under an objective and
optional constraints.

Evaluation cost is seconds per point (Table 1), so exhaustive sweeps of
dozens of points are practical where ISS/RTL evaluation would take days.
"""

from __future__ import annotations

import time

from .tlm.generator import generate_tlm


class DesignPoint:
    """One candidate: a named design plus bookkeeping metadata.

    ``build`` is a zero-argument callable returning a fresh
    :class:`~repro.tlm.platform.Design` (TLMs mutate nothing, but fresh
    designs keep points independent).  ``area`` is an arbitrary cost proxy
    (the MP3 study uses the number of custom-HW units).
    """

    __slots__ = ("name", "build", "area", "meta")

    def __init__(self, name, build, area=0, meta=None):
        self.name = name
        self.build = build
        self.area = area
        self.meta = dict(meta or {})

    def __repr__(self):
        return "DesignPoint(%r, area=%r)" % (self.name, self.area)


class PointResult:
    """Evaluation outcome of one design point."""

    __slots__ = ("point", "makespan_cycles", "per_process_cycles",
                 "wall_seconds", "tlm_result")

    def __init__(self, point, tlm_result, wall_seconds):
        self.point = point
        self.makespan_cycles = tlm_result.makespan_cycles
        self.per_process_cycles = {
            name: p.cycles for name, p in tlm_result.processes.items()
        }
        self.wall_seconds = wall_seconds
        self.tlm_result = tlm_result

    def __repr__(self):
        return "PointResult(%r: %d cycles)" % (
            self.point.name, self.makespan_cycles,
        )


class ExplorationResult:
    """All evaluated points plus ranking helpers."""

    def __init__(self, results, total_seconds):
        self.results = list(results)
        self.total_seconds = total_seconds

    def ranked(self, objective=None):
        """Points sorted best-first by ``objective(result)`` (default:
        makespan cycles)."""
        key = objective or (lambda r: r.makespan_cycles)
        return sorted(self.results, key=key)

    def best(self, objective=None, constraint=None):
        """The best point satisfying ``constraint(result)`` (or ``None``)."""
        for result in self.ranked(objective):
            if constraint is None or constraint(result):
                return result
        return None

    def pareto_front(self):
        """Points not dominated in (makespan, area) — the classic DSE view."""
        front = []
        for candidate in self.results:
            dominated = False
            for other in self.results:
                if other is candidate:
                    continue
                if (other.makespan_cycles <= candidate.makespan_cycles
                        and other.point.area <= candidate.point.area
                        and (other.makespan_cycles < candidate.makespan_cycles
                             or other.point.area < candidate.point.area)):
                    dominated = True
                    break
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda r: (r.point.area, r.makespan_cycles))

    def __len__(self):
        return len(self.results)


def explore(points, granularity="transaction"):
    """Evaluate every design point with a timed TLM.

    Args:
        points: iterable of :class:`DesignPoint`.
        granularity: sc_wait batching granularity for the TLM runs.

    Returns:
        an :class:`ExplorationResult`.
    """
    start = time.perf_counter()
    results = []
    for point in points:
        design = point.build()
        model = generate_tlm(design, timed=True, granularity=granularity)
        wall_start = time.perf_counter()
        tlm_result = model.run()
        wall = time.perf_counter() - wall_start
        results.append(PointResult(point, tlm_result, wall))
    return ExplorationResult(results, time.perf_counter() - start)


def mp3_design_points(params=None, n_frames=2, seed=7, cache_configs=None,
                      memory_model=None, branch_model=None):
    """The paper's MP3 design space as ready-made points.

    Variants SW/SW+1/SW+2/SW+4 crossed with the given cache configurations;
    area proxy = number of custom-HW units.
    """
    from .apps.mp3 import VARIANTS, build_design
    from .apps.mp3.source import VARIANT_MAPPINGS

    if cache_configs is None:
        cache_configs = ((8 * 1024, 4 * 1024),)
    points = []
    for variant in VARIANTS:
        for icache, dcache in cache_configs:
            def build(variant=variant, icache=icache, dcache=dcache):
                design, _ = build_design(
                    variant, params, n_frames=n_frames, seed=seed,
                    icache_size=icache, dcache_size=dcache,
                    memory_model=memory_model, branch_model=branch_model,
                )
                return design

            points.append(DesignPoint(
                "%s@%dk/%dk" % (variant, icache // 1024, dcache // 1024),
                build,
                area=len(VARIANT_MAPPINGS[variant]),
                meta={"variant": variant, "icache": icache, "dcache": dcache},
            ))
    return points
