"""Design-space exploration on top of timed TLMs.

The point of fast cycle-approximate TLMs (paper Section 1) is early
exploration: "choosing the optimal platform for a given application and the
optimal mapping of the application to the platform".  This module gives that
workflow a small API: declare candidate design points, evaluate each with an
automatically generated timed TLM, and rank them under an objective and
optional constraints.

Evaluation cost is seconds per point (Table 1), so exhaustive sweeps of
dozens of points are practical where ISS/RTL evaluation would take days.
Points are independent, so :func:`explore` can fan them out over a
``concurrent.futures`` process pool (``workers=N``); results come back in
submission order regardless of completion order, so rankings are
deterministic (see docs/performance.md).

Long sweeps are treated as production jobs (see docs/robustness.md):

* a worker killed mid-sweep (OOM, SIGKILL) breaks only its own points —
  the pool is rebuilt and the lost points retried with exponential backoff,
  degrading to in-process sequential evaluation when pools keep dying;
* ``point_timeout`` bounds how long any single point may hang; a stuck
  point is recorded as a failed :class:`PointResult` instead of wedging the
  sweep;
* ``checkpoint=<path>`` persists every completed point to an atomic JSON
  file, so an interrupted sweep resumes without re-evaluating anything.
"""

from __future__ import annotations

import os
import time

from .artifacts import default_store
from .errors import InputError
from .ioutil import atomic_write_json
from .parallel import fork_map, get_payload
from .tlm.generator import (
    DELAYS_KIND,
    GENSRC_KIND,
    GenerationReport,
    IR_KIND,
    generate_tlm,
    merge_generation_summaries,
)

#: Artifact kinds a prewarm child ships back to the parent.  ``tlm-code``
#: is excluded: code objects don't pickle, and workers recompile cached
#: source in microseconds anyway.
_PREWARM_KINDS = (IR_KIND, DELAYS_KIND, GENSRC_KIND)

#: Checkpoint-file format version.
CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(InputError):
    """Raised for unreadable or mismatched exploration checkpoints."""

    code = "checkpoint"


class DesignPoint:
    """One candidate: a named design plus bookkeeping metadata.

    ``build`` is a zero-argument callable returning a fresh
    :class:`~repro.tlm.platform.Design` (TLMs mutate nothing, but fresh
    designs keep points independent).  ``area`` is an arbitrary cost proxy
    (the MP3 study uses the number of custom-HW units).
    """

    __slots__ = ("name", "build", "area", "meta")

    def __init__(self, name, build, area=0, meta=None):
        self.name = name
        self.build = build
        self.area = area
        self.meta = dict(meta or {})

    def __repr__(self):
        return "DesignPoint(%r, area=%r)" % (self.name, self.area)


class PointResult:
    """Evaluation outcome of one design point.

    ``tlm_result`` is the full simulation outcome when the point was
    evaluated in-process; points evaluated in a worker process carry only
    the cycle summary (``tlm_result is None``), since simulation state does
    not cross the process boundary.

    ``error`` is ``None`` for a successful evaluation; a failed point (its
    evaluation raised, timed out, or was lost beyond retry) carries a
    one-line description instead of cycle numbers and is excluded from
    rankings.  ``cached`` marks results restored from a checkpoint file.

    ``generation`` is the point's compact TLM-generation summary
    (:meth:`~repro.tlm.generator.GenerationReport.summary`) — unlike the
    full simulation state, it is plain data and *does* cross the process
    boundary, so per-stage generation statistics survive ``workers>1``.
    Checkpoint-restored points carry ``None`` (nothing was generated).

    ``replayed`` marks points whose cycle counts came from the simtrace
    replay engines instead of a kernel run (see ``explore(replay=...)``);
    ``index`` is the point's position in the sweep's input order, the
    deterministic tie-breaker for :meth:`ExplorationResult.ranked`.
    """

    __slots__ = ("point", "makespan_cycles", "per_process_cycles",
                 "wall_seconds", "tlm_result", "error", "cached",
                 "generation", "replayed", "index")

    def __init__(self, point, tlm_result=None, wall_seconds=0.0,
                 makespan_cycles=None, per_process_cycles=None,
                 error=None, cached=False, generation=None,
                 replayed=False, index=None):
        self.point = point
        if tlm_result is not None:
            self.makespan_cycles = tlm_result.makespan_cycles
            self.per_process_cycles = {
                name: p.cycles for name, p in tlm_result.processes.items()
            }
        else:
            self.makespan_cycles = makespan_cycles
            self.per_process_cycles = dict(per_process_cycles or {})
        self.wall_seconds = wall_seconds
        self.tlm_result = tlm_result
        self.error = error
        self.cached = cached
        self.generation = generation
        self.replayed = replayed
        self.index = index

    @property
    def ok(self):
        return self.error is None

    def __repr__(self):
        if self.error is not None:
            return "PointResult(%r: failed: %s)" % (
                self.point.name, self.error,
            )
        return "PointResult(%r: %d cycles)" % (
            self.point.name, self.makespan_cycles,
        )


class ExplorationResult:
    """All evaluated points plus ranking helpers."""

    def __init__(self, results, total_seconds, workers=1, replay_stats=None):
        self.results = list(results)
        self.total_seconds = total_seconds
        self.workers = workers
        #: trace-replay counters when the sweep ran with ``replay != "off"``
        #: (``None`` otherwise): captures, reuses, replays per engine,
        #: validations and fallbacks — see :func:`explore`.
        self.replay_stats = replay_stats

    @property
    def failures(self):
        """Points whose evaluation failed (empty on a clean sweep)."""
        return [r for r in self.results if not r.ok]

    def ranked(self, objective=None):
        """Successful points sorted best-first by ``objective(result)``
        (default: makespan cycles); failed points are excluded.

        Objective ties break deterministically by the point's input-order
        index, not by the order of ``self.results`` (which a checkpoint
        restore or manual construction may have permuted).
        """
        key = objective or (lambda r: r.makespan_cycles)
        candidates = list(enumerate(r for r in self.results if r.ok))

        def sort_key(entry):
            pos, result = entry
            index = result.index if result.index is not None else pos
            return (key(result), index, pos)

        return [result for _, result in sorted(candidates, key=sort_key)]

    def best(self, objective=None, constraint=None):
        """The best point satisfying ``constraint(result)`` (or ``None``)."""
        for result in self.ranked(objective):
            if constraint is None or constraint(result):
                return result
        return None

    def pareto_front(self):
        """Points not dominated in (makespan, area) — the classic DSE view.

        Failed points cannot be compared and are excluded.  Objective ties
        order deterministically by the point's input-order index (the same
        rule as :meth:`ranked`), not by ``self.results`` order.
        """
        candidates = [entry for entry in enumerate(self.results)
                      if entry[1].ok]
        front = []
        for pos, candidate in candidates:
            dominated = False
            for _, other in candidates:
                if other is candidate:
                    continue
                if (other.makespan_cycles <= candidate.makespan_cycles
                        and other.point.area <= candidate.point.area
                        and (other.makespan_cycles < candidate.makespan_cycles
                             or other.point.area < candidate.point.area)):
                    dominated = True
                    break
            if not dominated:
                front.append((pos, candidate))

        def order(entry):
            pos, result = entry
            index = result.index if result.index is not None else pos
            return (result.point.area, result.makespan_cycles, index, pos)

        return [result for _, result in sorted(front, key=order)]

    def generation_summary(self):
        """Sweep-level TLM-generation statistics (per-stage seconds and
        hit/miss counts summed over every point that generated a TLM this
        run, local or in a worker).  ``points`` counts contributing points;
        checkpoint-restored and failed points contribute nothing."""
        return merge_generation_summaries(
            r.generation for r in self.results
        )

    def __len__(self):
        return len(self.results)


class ExplorationCheckpoint:
    """Atomic JSON persistence of completed design points.

    Every completed point is recorded (and the file rewritten atomically)
    as soon as its result reaches the parent process, so a sweep killed at
    any moment leaves a loadable checkpoint behind.  Re-running with the
    same path restores those points without re-evaluating them.

    The file binds to the sweep's wait granularity: resuming a checkpoint
    written under a different granularity would silently mix cycle counts
    from different simulation configurations, so that raises
    :class:`CheckpointError` instead.
    """

    def __init__(self, path, granularity="transaction"):
        self.path = path
        self.granularity = granularity
        self.completed = {}  # point name -> payload dict
        self._load()

    def _load(self):
        if not os.path.exists(self.path):
            return
        import json

        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                "checkpoint %s is unreadable: %s" % (self.path, exc)
            ) from None
        if not isinstance(data, dict) or (
            data.get("version") != CHECKPOINT_FORMAT_VERSION
        ):
            raise CheckpointError(
                "checkpoint %s has an unsupported format (version %r)"
                % (self.path, data.get("version") if isinstance(data, dict)
                   else None)
            )
        if data.get("granularity") != self.granularity:
            raise CheckpointError(
                "checkpoint %s was written for granularity %r, this sweep "
                "uses %r — delete the file or match the granularity"
                % (self.path, data.get("granularity"), self.granularity)
            )
        for name, entry in data.get("points", {}).items():
            if (isinstance(entry, dict)
                    and "makespan_cycles" in entry
                    and "per_process_cycles" in entry):
                self.completed[name] = entry

    def record(self, name, makespan_cycles, per_process_cycles,
               wall_seconds):
        """Persist one completed point (atomic rewrite)."""
        self.completed[name] = {
            "makespan_cycles": makespan_cycles,
            "per_process_cycles": dict(per_process_cycles),
            "wall_seconds": wall_seconds,
        }
        self.save()

    def save(self):
        atomic_write_json(self.path, {
            "version": CHECKPOINT_FORMAT_VERSION,
            "granularity": self.granularity,
            "points": self.completed,
        })

    def __len__(self):
        return len(self.completed)


def _evaluate_point_index(index):
    """Worker-side evaluation of one design point (runs in a forked child).

    Design-point builders are closures (not picklable) and the warm
    artifact store holds live IR and code objects, so both travel through
    :func:`repro.parallel.fork_map`'s pre-fork payload (inherited by the
    forked children) and only this index crosses the process boundary.
    The returned tuple ends with the point's generation summary — plain
    data, so per-stage statistics survive the trip back to the parent.
    """
    payload = get_payload()
    point = payload["points"][index]
    design = point.build()
    report = GenerationReport(design.name, True)
    spec = _traffic_spec_of(point)
    if spec is not None:
        result = _evaluate_traffic(
            point, design, spec, payload["granularity"],
            store=payload["store"], faults=payload.get("faults"),
        )
        if not result.ok:
            raise RuntimeError(result.error)
        return (result.makespan_cycles, result.per_process_cycles,
                result.wall_seconds, report.summary())
    model = generate_tlm(design, timed=True,
                         granularity=payload["granularity"],
                         report=report, store=payload["store"])
    wall_start = time.perf_counter()
    tlm_result = model.run(faults=payload.get("faults"))
    wall = time.perf_counter() - wall_start
    per_process = {
        name: p.cycles for name, p in tlm_result.processes.items()
    }
    return tlm_result.makespan_cycles, per_process, wall, report.summary()


def _explore_parallel(points, granularity, workers, indices, store=None,
                      point_timeout=None, retries=2, retry_backoff=0.5,
                      on_result=None, faults=None):
    """Evaluate ``indices`` of ``points`` through the shared fork pool.

    Returns ``{index: ("ok", (makespan, per_process, wall, gen_summary)) |
    ("error", message)}`` with :func:`repro.parallel.fork_map`'s
    degradation semantics (missing indices / ``None``: see there).
    """
    return fork_map(
        _evaluate_point_index, indices, workers,
        payload={"points": points, "granularity": granularity,
                 "store": store, "faults": faults},
        task_timeout=point_timeout, retries=retries,
        retry_backoff=retry_backoff, on_result=on_result,
    )


def _prewarm_generate(task):
    """Prewarm-task body (runs in a forked child, see
    :func:`_prewarm_store`): generate every pending point's TLM against the
    inherited store copy, then return the picklable entries the parent does
    not already hold."""
    payload = get_payload()
    points = payload["points"]
    store = payload["store"]
    for index in payload["indices"]:
        try:
            generate_tlm(points[index].build(), timed=True,
                         granularity=payload["granularity"], store=store)
        except Exception:
            pass
    known = payload["known"]
    return [
        (kind, key, value)
        for kind in _PREWARM_KINDS
        for key, value in store.items(kind)
        if key not in known[kind]
    ]


def _prewarm_store(points, indices, granularity, store,
                   point_timeout=None, retry_backoff=0.5):
    """Generate (but do not run) the todo points' TLMs once, pre-fork.

    This fills the artifact store — front-end IR, per-block delays and
    generated source — before the worker pool forks.  Points share sources
    (and often PUMs), so each distinct stage is paid once; children then
    inherit the warm store copy-on-write, so workers mostly ``exec`` cached
    modules instead of re-running the front-end per point.  Simulation, the
    dominant cost, still fans out.

    Point builders are arbitrary user code that may crash, ``SIGKILL``
    itself (a worker dying of OOM is the documented failure mode this sweep
    survives) or hang — so the generation runs in a forked child of its
    own, shipping picklable store entries back; the parent never executes a
    builder here.  Best-effort in every failure direction: if the child
    dies or times out, the sweep proceeds with whatever store warmth exists
    and the offending point fails (or not) through the normal evaluation
    paths.
    """
    known = {
        kind: {key for key, _ in store.items(kind)}
        for kind in _PREWARM_KINDS
    }
    timeout = None
    if point_timeout is not None:
        # Generation is far cheaper than the simulation point_timeout
        # bounds, so one point's budget per pending point is generous.
        timeout = point_timeout * max(1, len(indices))
    result = fork_map(
        _prewarm_generate, [0], workers=1,
        payload={"points": points, "indices": list(indices),
                 "granularity": granularity, "store": store,
                 "known": known},
        task_timeout=timeout, retries=1, retry_backoff=retry_backoff,
    )
    if not result or result.get(0, ("error",))[0] != "ok":
        return
    for kind, key, value in result[0][1]:
        try:
            store.put(kind, key, value)
        except Exception:
            pass


def _traffic_spec_of(point):
    """The point's :class:`~repro.workloads.TrafficSpec`, or ``None``.

    ``meta["traffic"]`` opts a design point into traffic-mode evaluation
    (N instances over one shared platform, see :mod:`repro.workloads`);
    accepted shapes: a TrafficSpec, its ``to_dict`` form, or a bare
    instance count (search axes sweep plain integers).
    """
    spec = point.meta.get("traffic")
    if spec is None:
        return None
    from .workloads import TrafficSpec

    if isinstance(spec, TrafficSpec):
        return spec
    if isinstance(spec, dict):
        return TrafficSpec.from_dict(spec)
    return TrafficSpec(int(spec), arrivals="bursty",
                       burst_size=max(1, int(spec)), mean_gap_cycles=0.0)


def _evaluate_traffic(point, design, spec, granularity, store=None,
                      faults=None):
    """Traffic-mode evaluation of one *prebuilt* design.

    The makespan is the traffic run's first-arrival-to-last-completion
    span; per-process cycles are the per-instance latencies (keyed
    ``instance#i``), so rankings and checkpoints reuse the TLM plumbing
    unchanged.
    """
    from .workloads import run_traffic

    wall_start = time.perf_counter()
    try:
        traffic = run_traffic(design, spec, granularity=granularity,
                              store=store, faults=faults)
    except Exception as exc:
        return PointResult(
            point,
            wall_seconds=time.perf_counter() - wall_start,
            error="%s: %s" % (type(exc).__name__, exc),
        )
    return PointResult(
        point,
        wall_seconds=time.perf_counter() - wall_start,
        makespan_cycles=traffic.makespan_cycles,
        per_process_cycles={
            "instance#%d" % i: latency
            for i, latency in enumerate(traffic.latencies_cycles)
        },
    )


def _evaluate_with_trace(point, design, granularity, store=None):
    """In-process evaluation of one *prebuilt* design with trace capture.

    Returns ``(PointResult, SimTrace | None)``; capture failures degrade to
    a failed result with no trace, exactly like :func:`_evaluate_sequential`.
    """
    from .simtrace import capture_tlm_trace

    wall_start = time.perf_counter()
    report = GenerationReport(point.name, True)
    try:
        trace, tlm_result = capture_tlm_trace(
            design, granularity=granularity, store=store, report=report,
        )
    except Exception as exc:
        return PointResult(
            point,
            wall_seconds=time.perf_counter() - wall_start,
            error="%s: %s" % (type(exc).__name__, exc),
        ), None
    return PointResult(
        point, tlm_result, time.perf_counter() - wall_start,
        generation=report.summary(),
    ), trace


def _evaluate_design(point, design, granularity, store=None, faults=None):
    """In-process evaluation of one *prebuilt* design (no capture)."""
    spec = _traffic_spec_of(point)
    if spec is not None:
        return _evaluate_traffic(point, design, spec, granularity,
                                 store=store, faults=faults)
    wall_start = time.perf_counter()
    report = GenerationReport(point.name, True)
    try:
        model = generate_tlm(design, timed=True, granularity=granularity,
                             report=report, store=store)
        tlm_result = model.run(faults=faults)
    except Exception as exc:
        return PointResult(
            point,
            wall_seconds=time.perf_counter() - wall_start,
            error="%s: %s" % (type(exc).__name__, exc),
        )
    return PointResult(
        point, tlm_result, time.perf_counter() - wall_start,
        generation=report.summary(),
    )


def _replay_group(points, indices, designs, trace, scales, granularity,
                  store, ckpt, validate_n, tolerance, slots, stats):
    """Replay one signature group against ``trace``; fills ``slots``.

    ``scales`` carries the approximate-tier delay rescales per index
    (``None`` ⇒ exact tier for that index).  The first ``validate_n``
    candidates are *also* fully simulated; an exact-tier candidate must
    match its replay bit-for-bit, an approximate one within ``tolerance``
    relative makespan error.  Any divergence abandons the whole group —
    every not-yet-recorded index is left for the normal simulation paths
    (returned as the unresolved list).
    """
    from .simtrace import replay_many

    outcomes, engine_stats = replay_many(
        trace, [designs[i] for i in indices],
        delay_scales=[scales.get(i) for i in indices],
    )
    stats["vectorized"] += engine_stats["vectorized"]
    stats["scalar"] += engine_stats["scalar"]

    accepted = []
    for position, index in enumerate(indices):
        outcome = outcomes[position]
        if position < validate_n:
            reference = _evaluate_design(
                points[index], designs[index], granularity, store=store,
            )
            stats["simulated"] += 1
            stats["validated"] += 1
            diverged = True
            if reference.ok:
                if scales.get(index) is None:
                    diverged = (
                        outcome.makespan_cycles != reference.makespan_cycles
                        or outcome.per_process_cycles
                        != reference.per_process_cycles
                    )
                else:
                    span = reference.makespan_cycles or 1
                    diverged = (
                        abs(outcome.makespan_cycles - span) / span
                        > tolerance
                    )
            slots[index] = reference  # the kernel run is authoritative
            if reference.ok and ckpt is not None:
                ckpt.record(points[index].name, reference.makespan_cycles,
                            reference.per_process_cycles,
                            reference.wall_seconds)
            if diverged:
                stats["fallbacks"] += 1
                return [i for i in indices if slots[i] is None]
        else:
            accepted.append((index, outcome))

    for index, outcome in accepted:
        exact = scales.get(index) is None
        slots[index] = PointResult(
            points[index],
            makespan_cycles=outcome.makespan_cycles,
            per_process_cycles=outcome.per_process_cycles,
            replayed=True,
        )
        stats["replayed_exact" if exact else "replayed_approx"] += 1
        if ckpt is not None:
            ckpt.record(points[index].name, outcome.makespan_cycles,
                        outcome.per_process_cycles, 0.0)
    return []


def _try_replay(points, todo, granularity, store, ckpt, mode, validate_n,
                tolerance, slots):
    """The sweep's trace-replay phase (``explore(replay=...)``).

    Classifies the pending ``todo`` points into replay-signature groups,
    captures (or reuses from the artifact store) one trace per group, and
    replays the remaining members, validating a per-group subset against
    the kernel.  Returns ``(remaining_todo, stats)``; every index either
    got its slot filled or stays in the remaining list for the normal
    simulation paths — builder or capture failures never abort the sweep
    here.
    """
    from .simtrace import (
        TRACE_KIND,
        approx_signature,
        process_delay_totals,
        replay_signature,
    )

    stats = {
        "mode": mode,
        "points": len(todo),
        "traces_captured": 0,
        "traces_reused": 0,
        "replayed_exact": 0,
        "replayed_approx": 0,
        "simulated": 0,
        "validated": 0,
        "fallbacks": 0,
        "vectorized": 0,
        "scalar": 0,
    }
    designs = {}
    exact_sigs = {}
    groups = {}  # group key -> [index]; exact sig (auto) / approx (approx)
    unresolved = []
    for index in todo:
        try:
            design = points[index].build().validate()
            exact_sig = replay_signature(design, granularity=granularity)
            key = (
                approx_signature(design, granularity=granularity)
                if mode == "approx" else exact_sig
            )
        except Exception:
            unresolved.append(index)  # surfaces via the normal paths
            continue
        designs[index] = design
        exact_sigs[index] = exact_sig
        groups.setdefault(key, []).append(index)

    for indices in groups.values():
        trace = None
        # Any member's exact signature may name a stored trace.
        if store is not None:
            for index in indices:
                trace = store.get(TRACE_KIND, exact_sigs[index])
                if trace is not None:
                    stats["traces_reused"] += 1
                    break
        if trace is None:
            # Capture from the group's first member; its kernel run is the
            # member's own result.
            first = indices[0]
            result, trace = _evaluate_with_trace(
                points[first], designs[first], granularity, store=store,
            )
            slots[first] = result
            stats["simulated"] += 1
            if trace is None:
                unresolved.extend(i for i in indices if slots[i] is None)
                continue
            stats["traces_captured"] += 1
            if result.ok and ckpt is not None:
                ckpt.record(points[first].name, result.makespan_cycles,
                            result.per_process_cycles, result.wall_seconds)

        candidates = [i for i in indices if slots[i] is None]
        if not candidates:
            continue
        scales = {}
        try:
            for index in candidates:
                if exact_sigs[index] == trace.signature:
                    scales[index] = None
                else:
                    totals = process_delay_totals(designs[index], store=store)
                    scales[index] = {
                        name: totals[name] / trace.delay_totals[name]
                        if trace.delay_totals.get(name) else 1.0
                        for name in totals
                    }
            unresolved.extend(_replay_group(
                points, candidates, designs, trace, scales, granularity,
                store, ckpt, validate_n, tolerance, slots, stats,
            ))
        except Exception:
            # Replay is an optimisation; any failure returns the group to
            # the kernel paths.
            stats["fallbacks"] += 1
            unresolved.extend(i for i in candidates if slots[i] is None)
    return unresolved, stats


def _try_traffic_replay(points, todo, granularity, store, ckpt, validate_n,
                        slots):
    """The sweep's traffic-replay phase: analytic N-instance evaluation.

    Groups the pending traffic-mode points by full design identity (one
    capture serves every spec of one design), hands each group to
    :func:`repro.workloads.traffic_replay.replay_traffic_sweep` — which
    replays exactly where it can and falls back to kernel runs where it
    must — and fills ``slots`` with the outcomes.  Returns
    ``(remaining_todo, stats)``; only points whose *builder* failed are
    left for the normal paths.
    """
    import json

    from .artifacts import content_key
    from .tlm.serialize import design_to_dict

    stats = {
        "points": len(todo),
        "groups": 0,
        "replayed": 0,
        "simulated": 0,
        "flagged": 0,
        "validated": 0,
        "fallbacks": 0,
    }
    groups = {}  # design content key -> [index]
    designs = {}
    specs = {}
    unresolved = []
    for index in todo:
        try:
            design = points[index].build().validate()
            key = content_key(
                json.dumps(design_to_dict(design), sort_keys=True),
                granularity,
            )
            specs[index] = _traffic_spec_of(points[index])
        except Exception:
            unresolved.append(index)  # surfaces via the normal paths
            continue
        designs[index] = design
        groups.setdefault(key, []).append(index)

    from .workloads.traffic_replay import replay_traffic_sweep

    for indices in groups.values():
        stats["groups"] += 1
        wall_start = time.perf_counter()
        try:
            results, group_stats = replay_traffic_sweep(
                designs[indices[0]], [specs[i] for i in indices],
                granularity=granularity, store=store,
                validate_n=validate_n,
            )
        except Exception:
            # The analytic tier is an optimisation; any failure returns
            # the group to the kernel paths.
            stats["fallbacks"] += len(indices)
            unresolved.extend(indices)
            continue
        for counter in ("replayed", "simulated", "flagged", "validated",
                        "fallbacks"):
            stats[counter] += group_stats.get(counter, 0)
        wall_each = (time.perf_counter() - wall_start) / len(indices)
        for index, traffic in zip(indices, results):
            result = PointResult(
                points[index],
                wall_seconds=wall_each,
                makespan_cycles=traffic.makespan_cycles,
                per_process_cycles={
                    "instance#%d" % i: latency
                    for i, latency in enumerate(traffic.latencies_cycles)
                },
                replayed=traffic.replayed,
            )
            slots[index] = result
            if ckpt is not None:
                ckpt.record(points[index].name, result.makespan_cycles,
                            result.per_process_cycles, result.wall_seconds)
    return unresolved, stats


def _evaluate_sequential(point, granularity, store=None, faults=None):
    """In-process evaluation of one point; never raises for point-local
    failures (returns a failed :class:`PointResult` instead)."""
    spec = _traffic_spec_of(point)
    if spec is not None:
        try:
            design = point.build()
        except Exception as exc:
            return PointResult(
                point, error="%s: %s" % (type(exc).__name__, exc),
            )
        return _evaluate_traffic(point, design, spec, granularity,
                                 store=store, faults=faults)
    wall_start = time.perf_counter()
    report = GenerationReport(point.name, True)
    try:
        design = point.build()
        model = generate_tlm(design, timed=True, granularity=granularity,
                             report=report, store=store)
        tlm_result = model.run(faults=faults)
    except Exception as exc:
        return PointResult(
            point,
            wall_seconds=time.perf_counter() - wall_start,
            error="%s: %s" % (type(exc).__name__, exc),
        )
    return PointResult(
        point, tlm_result, time.perf_counter() - wall_start,
        generation=report.summary(),
    )


def explore(points, granularity="transaction", workers=1,
            point_timeout=None, retries=2, retry_backoff=0.5,
            checkpoint=None, replay="off", replay_validate=1,
            replay_tolerance=0.05, faults=None):
    """Evaluate every design point with a timed TLM.

    Args:
        points: iterable of :class:`DesignPoint`.
        granularity: sc_wait batching granularity for the TLM runs.
        workers: process-pool width.  ``1`` (the default) evaluates
            sequentially in-process — behaviour identical to earlier
            releases; ``N > 1`` evaluates up to N points concurrently in
            forked workers, falling back to the sequential path on
            platforms without ``fork``.  Either way the result list is in
            input order and every cycle count is identical (simulation is
            deterministic), so rankings do not depend on ``workers``.
        point_timeout: optional per-point wall-clock bound (seconds) for
            pool evaluation; a stuck point is recorded as a failed result
            instead of wedging the sweep.
        retries: pool rebuilds tolerated after worker crashes
            (``BrokenProcessPool``) before degrading the remaining points
            to sequential evaluation.
        retry_backoff: base of the exponential backoff (seconds) between
            pool rebuilds.
        checkpoint: optional path (or :class:`ExplorationCheckpoint`) —
            completed points are persisted as they finish and restored on
            the next run instead of being re-evaluated.  Requires unique
            point names.
        replay: the simtrace fast path (see :mod:`repro.simtrace`).
            ``"off"`` (default) simulates every point.  ``"auto"``
            classifies points into exact replay-signature groups, runs ONE
            recorded simulation per group (or reuses a cached trace) and
            *replays* the remaining members bit-identically.  ``"approx"``
            additionally groups across PUM changes, rescaling recorded
            delays by static per-process delay ratios (cycle-approximate).
            The sweep's counters land on
            :attr:`ExplorationResult.replay_stats`.
        replay_validate: per group, how many replayed candidates are also
            fully simulated and compared — bit-identity for exact-tier
            candidates, ``replay_tolerance`` relative makespan error for
            approximate ones.  Divergence falls the whole group back to
            plain simulation.
        replay_tolerance: the approximate-tier validation bound.
        faults: optional :class:`~repro.faults.FaultScenario` injected into
            every point's simulation (resilience sweeps).  Composes with
            the robustness machinery by *degrading*, never by surprising:
            the kernel refuses to record traces of fault-injected runs, so
            any requested ``replay`` tier is skipped and every point takes
            a kernel run (``replay_stats["skipped"]`` says why), and
            fault-perturbed cycle counts must not be restored as clean
            results later, so combining ``faults`` with ``checkpoint``
            raises :class:`CheckpointError`.

    Returns:
        an :class:`ExplorationResult` with one result per input point, in
        input order; failed points carry ``error`` and are excluded from
        rankings (see ``ExplorationResult.failures``).
    """
    points = list(points)
    start = time.perf_counter()

    ckpt = None
    if checkpoint is not None:
        if faults is not None:
            raise CheckpointError(
                "fault-injected sweeps cannot be checkpointed: the "
                "perturbed cycle counts would later be restored as clean "
                "results — drop checkpoint= or faults="
            )
        names = [p.name for p in points]
        if len(set(names)) != len(names):
            raise CheckpointError(
                "checkpointed sweeps need unique point names"
            )
        ckpt = (
            checkpoint if isinstance(checkpoint, ExplorationCheckpoint)
            else ExplorationCheckpoint(checkpoint, granularity)
        )

    slots = [None] * len(points)
    todo = []
    for index, point in enumerate(points):
        entry = ckpt.completed.get(point.name) if ckpt is not None else None
        if entry is not None:
            slots[index] = PointResult(
                point,
                makespan_cycles=entry["makespan_cycles"],
                per_process_cycles=entry["per_process_cycles"],
                wall_seconds=entry.get("wall_seconds", 0.0),
                cached=True,
            )
        else:
            todo.append(index)

    def on_parallel_result(index, payload):
        if ckpt is not None and payload[0] == "ok":
            makespan, per_process, wall = payload[1][:3]
            ckpt.record(points[index].name, makespan, per_process, wall)

    store = default_store()

    if replay not in ("off", "auto", "approx"):
        raise ValueError('replay must be "off", "auto" or "approx"')
    replay_stats = None
    if replay != "off" and faults is not None:
        # The kernel rejects record+faults, so a fault-injected sweep
        # cannot capture traces; degrade the whole phase to kernel runs.
        replay_stats = {"mode": replay, "points": len(todo),
                        "skipped": "fault-injection"}
    elif replay != "off" and todo:
        # Traffic-mode points take their own analytic tier: a recorded
        # single-instance profile plus the per-bus grant-queue replay
        # (exact-with-fallback; see repro.workloads.traffic_replay).
        traffic_todo = [
            i for i in todo if _traffic_spec_of(points[i]) is not None
        ]
        replayable = [
            i for i in todo if _traffic_spec_of(points[i]) is None
        ]
        todo = []
        if replayable:
            unresolved, replay_stats = _try_replay(
                points, replayable, granularity, store, ckpt, replay,
                max(0, int(replay_validate)), replay_tolerance, slots,
            )
            todo = unresolved
        else:
            replay_stats = {"mode": replay, "points": 0,
                            "traces_captured": 0, "traces_reused": 0,
                            "replayed_exact": 0, "replayed_approx": 0,
                            "simulated": 0, "validated": 0, "fallbacks": 0,
                            "vectorized": 0, "scalar": 0}
        if traffic_todo:
            replay_stats["traffic_points"] = len(traffic_todo)
            traffic_unresolved, traffic_stats = _try_traffic_replay(
                points, traffic_todo, granularity, store, ckpt,
                max(0, int(replay_validate)), slots,
            )
            todo = todo + traffic_unresolved
            for key, value in traffic_stats.items():
                if key != "points":
                    replay_stats["traffic_" + key] = value
        todo = sorted(todo)

    used_workers = 1
    if workers > 1 and len(todo) > 1:
        if store is not None:
            _prewarm_store(points, todo, granularity, store,
                           point_timeout=point_timeout,
                           retry_backoff=retry_backoff)
        payloads = _explore_parallel(
            points, granularity, workers, todo, store=store,
            point_timeout=point_timeout, retries=retries,
            retry_backoff=retry_backoff, on_result=on_parallel_result,
            faults=faults,
        )
        if payloads is not None:
            used_workers = workers
            for index, payload in payloads.items():
                point = points[index]
                if payload[0] == "ok":
                    makespan, per_process, wall, gen = payload[1]
                    slots[index] = PointResult(
                        point,
                        wall_seconds=wall,
                        makespan_cycles=makespan,
                        per_process_cycles=per_process,
                        generation=gen,
                    )
                else:
                    slots[index] = PointResult(point, error=payload[1])

    # Sequential path: everything parallel evaluation did not cover —
    # the workers=1 default, fork-less platforms, and the degradation
    # path for points lost to repeated pool breakage.
    for index in range(len(points)):
        if slots[index] is not None:
            continue
        result = _evaluate_sequential(points[index], granularity,
                                      store=store, faults=faults)
        slots[index] = result
        if ckpt is not None and result.ok:
            ckpt.record(
                points[index].name, result.makespan_cycles,
                result.per_process_cycles, result.wall_seconds,
            )
    for index, result in enumerate(slots):
        result.index = index
    return ExplorationResult(
        slots, time.perf_counter() - start, workers=used_workers,
        replay_stats=replay_stats,
    )


def mp3_design_points(params=None, n_frames=2, seed=7, cache_configs=None,
                      memory_model=None, branch_model=None):
    """The paper's MP3 design space as ready-made points.

    Variants SW/SW+1/SW+2/SW+4 crossed with the given cache configurations;
    area proxy = number of custom-HW units.
    """
    from .apps.mp3 import VARIANTS, build_design
    from .apps.mp3.source import VARIANT_MAPPINGS

    if cache_configs is None:
        cache_configs = ((8 * 1024, 4 * 1024),)
    points = []
    for variant in VARIANTS:
        for icache, dcache in cache_configs:
            def build(variant=variant, icache=icache, dcache=dcache):
                design, _ = build_design(
                    variant, params, n_frames=n_frames, seed=seed,
                    icache_size=icache, dcache_size=dcache,
                    memory_model=memory_model, branch_model=branch_model,
                )
                return design

            points.append(DesignPoint(
                "%s@%dk/%dk" % (variant, icache // 1024, dcache // 1024),
                build,
                area=len(VARIANT_MAPPINGS[variant]),
                meta={"variant": variant, "icache": icache, "dcache": dcache},
            ))
    return points


def mp3_platform_points(params=None, variant="SW+2", n_frames=1, seed=7,
                        icache_size=8 * 1024, dcache_size=4 * 1024,
                        bus_widths=(1, 2, 4), bus_arbitrations=(1, 2, 4),
                        cpu_mhz=(100.0, 125.0), memory_model=None,
                        branch_model=None):
    """A *platform* sweep over one MP3 mapping: bus width × bus arbitration
    latency × CPU clock, application and caches held fixed.

    This is the sweep shape the simtrace replay fast path is built for —
    every point shares one exact replay signature, so
    ``explore(points, replay="auto")`` simulates once and replays the rest
    (see docs/performance.md).
    """
    from .apps.mp3 import build_design
    from .apps.mp3.source import VARIANT_MAPPINGS

    points = []
    for width in bus_widths:
        for arbitration in bus_arbitrations:
            for mhz in cpu_mhz:
                def build(width=width, arbitration=arbitration, mhz=mhz):
                    design, _ = build_design(
                        variant, params, n_frames=n_frames, seed=seed,
                        icache_size=icache_size, dcache_size=dcache_size,
                        memory_model=memory_model,
                        branch_model=branch_model,
                    )
                    for bus in design.buses.values():
                        bus.words_per_cycle = width
                        bus.arbitration_cycles = arbitration
                    design.pes["cpu"].pum.frequency_mhz = mhz
                    return design

                points.append(DesignPoint(
                    "%s w%d a%d %gMHz" % (variant, width, arbitration, mhz),
                    build,
                    area=len(VARIANT_MAPPINGS[variant]),
                    meta={"variant": variant, "bus_width": width,
                          "bus_arbitration": arbitration, "cpu_mhz": mhz},
                ))
    return points


def mp3_traffic_points(params=None, variant="SW+2", n_frames=1, seed=7,
                       icache_size=8 * 1024, dcache_size=4 * 1024,
                       n_instances=(1, 4, 16), arrivals="poisson",
                       mean_gap_cycles=1000.0, burst_size=8, traffic_seed=0,
                       policy="fifo", memory_model=None, branch_model=None):
    """A *traffic* sweep over one MP3 mapping: instance count under a
    seeded arrival process, platform held fixed.

    Each point simulates ``n`` decoder instances over one shared platform
    (``meta["traffic"]`` routes evaluation through
    :func:`repro.workloads.run_traffic`); ``policy`` arms every bus with a
    dynamic arbiter so instances contend with real queuing delays
    (``None`` keeps the static bus model).  Rankings then answer capacity
    questions — how much load the platform absorbs before the makespan
    knee — instead of single-run latency questions.
    """
    from .apps.mp3 import build_design
    from .apps.mp3.source import VARIANT_MAPPINGS

    points = []
    for n in n_instances:
        def build(n=n):
            design, _ = build_design(
                variant, params, n_frames=n_frames, seed=seed,
                icache_size=icache_size, dcache_size=dcache_size,
                memory_model=memory_model, branch_model=branch_model,
            )
            if policy is not None:
                for bus in design.buses.values():
                    bus.policy = policy
            return design

        points.append(DesignPoint(
            "%s x%d %s" % (variant, n, arrivals),
            build,
            area=len(VARIANT_MAPPINGS[variant]),
            meta={
                "variant": variant,
                "traffic": {
                    "n_instances": n,
                    "arrivals": arrivals,
                    "mean_gap_cycles": mean_gap_cycles,
                    "burst_size": burst_size,
                    "seed": traffic_seed,
                },
            },
        ))
    return points
