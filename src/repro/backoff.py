"""Jittered exponential backoff, shared by every retry loop.

A purely deterministic exponential backoff has a failure mode in fleets:
shards (or serve workers) that crashed *together* — same OOM event, same
poisoned artifact — retry together, re-synchronising the very load spike
that killed them.  Multiplicative jitter decorrelates the retries while
keeping the exponential envelope.

Used by :func:`repro.parallel.fork_map` (pool rebuilds after worker
crashes) and :class:`repro.serve.pool.WorkerPool` (resident-worker
restarts).  Callers that need reproducible delays (tests) pass a seeded
``random.Random``.
"""

from __future__ import annotations

import random

#: Default cap on any single delay (seconds).
DEFAULT_CAP = 60.0

#: Default jitter spread: each delay is scaled by a uniform factor in
#: ``[1 - spread, 1 + spread)``.
DEFAULT_SPREAD = 0.5

_default_rng = random.Random()


def jittered_backoff(base, attempt, cap=DEFAULT_CAP, spread=DEFAULT_SPREAD,
                     rng=None):
    """The delay (seconds) before retry number ``attempt`` (0-based).

    The envelope is ``min(cap, base * 2**attempt)``; the returned delay is
    that envelope scaled by a uniform jitter factor in
    ``[1 - spread, 1 + spread)``.  ``base <= 0`` disables waiting entirely
    (returns ``0.0``), which retry loops use as a fast-test knob.
    """
    if base <= 0:
        return 0.0
    if not 0.0 <= spread < 1.0:
        raise ValueError("spread must be in [0, 1)")
    envelope = min(cap, base * (2 ** max(0, attempt)))
    factor = 1.0 - spread + 2.0 * spread * (rng or _default_rng).random()
    return envelope * factor


def backoff_delays(base, retries, cap=DEFAULT_CAP, spread=DEFAULT_SPREAD,
                   rng=None):
    """The full ladder of delays for ``retries`` attempts (list of floats)."""
    return [
        jittered_backoff(base, attempt, cap=cap, spread=spread, rng=rng)
        for attempt in range(retries)
    ]
