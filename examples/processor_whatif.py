"""What-if processor exploration: sweep PE parameters with estimation only.

Because the PUM is just data, "what if the CPU had a faster multiplier /
a second issue slot / a slower FPU?" are questions the estimation engine
answers in milliseconds, with no compiler port, no ISS, no RTL — the
*retargetable* half of the paper's title.

The script estimates the MP3 decoder's hot loop on a family of hypothetical
MicroBlaze variants and on the dual-issue superscalar preset.

Run:  python examples/processor_whatif.py
"""

from repro.api import compile_cmini
from repro.apps.mp3 import Mp3Params, build_sources
from repro.estimation import profile_program
from repro.pum import microblaze, superscalar2
from repro.pum.model import FunctionalUnit, PUM
from repro.reporting import Table, fmt_cycles


def variant(name, mul_delay=3, fpu_add=4, fpu_mul=4):
    """A MicroBlaze variant with modified functional-unit timings."""
    base = microblaze(icache_size=8 * 1024, dcache_size=4 * 1024)
    units = []
    for unit in base.units:
        if unit.kind == "MUL":
            units.append(FunctionalUnit(unit.uid, "MUL", unit.quantity,
                                        {"mul": mul_delay}))
        elif unit.kind == "FPU":
            units.append(FunctionalUnit(
                unit.uid, "FPU", unit.quantity,
                {"add": fpu_add, "mul": fpu_mul, "div": 28},
            ))
        else:
            units.append(unit)
    return PUM(
        name, base.execution, units, base.pipelines,
        branch=base.branch, memory=base.memory,
        icache_size=base.icache_size, dcache_size=base.dcache_size,
        frequency_mhz=base.frequency_mhz,
    )


def main():
    params = Mp3Params(n_subbands=8, n_slots=8, n_phases=8, n_alias=4)
    cpu_src, _, _ = build_sources("SW", params, n_frames=1, seed=3)

    candidates = [
        variant("baseline (3c mul, 4c fpu)"),
        variant("fast multiplier (1c)", mul_delay=1),
        variant("fast FPU (2c add/mul)", fpu_add=2, fpu_mul=2),
        variant("slow FPU (8c add/mul)", fpu_add=8, fpu_mul=8),
        superscalar2(icache_size=8 * 1024, dcache_size=4 * 1024),
    ]

    table = Table(
        ["processor", "est. total cycles", "vs baseline"],
        title="MP3 decoder (1 frame) on hypothetical processors",
    )
    baseline = None
    for pum in candidates:
        profile = profile_program(compile_cmini(cpu_src), pum)
        if baseline is None:
            baseline = profile.total_cycles
        table.add_row(
            pum.name,
            fmt_cycles(profile.total_cycles),
            "%.2fx" % (baseline / profile.total_cycles),
        )
    print(table.render())
    print()
    top = profile_program(compile_cmini(cpu_src), candidates[0])
    names = ", ".join(f.name for f in top.hottest_functions(2))
    print("Hot functions on the baseline (offload candidates): %s" % names)


if __name__ == "__main__":
    main()
