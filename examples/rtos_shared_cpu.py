"""Timed RTOS modelling: two decoder-like tasks sharing one CPU.

The paper's future work ("we plan to improve our PE data models by adding
RTOS parameters") realised: two processes are mapped to the same MicroBlaze
under an RTOS model, their annotated delays serialise on the shared
processor, and the context-switch overhead is swept to show its system-level
impact — a question a designer can now answer from the timed TLM alone.

Run:  python examples/rtos_shared_cpu.py
"""

from repro.pum import microblaze
from repro.reporting import Table, fmt_cycles
from repro.rtos import RTOSModel
from repro.tlm import Design, generate_tlm

PRODUCER = """
int frame[32];
void main(void) {
  for (int f = 0; f < 8; f++) {
    for (int i = 0; i < 32; i++) {
      frame[i] = (f * 31 + i * 17) % 256;
    }
    send(1, frame, 32);
  }
}
"""

CONSUMER = """
int frame[32];
int checksum;
int main(void) {
  for (int f = 0; f < 8; f++) {
    recv(1, frame, 32);
    for (int i = 0; i < 32; i++) {
      checksum = (checksum * 33 + frame[i]) % 65536;
    }
  }
  return checksum;
}
"""


def build(cs_cycles):
    design = Design("rtos-cs%d" % cs_cycles)
    design.add_pe(
        "cpu", microblaze(8 * 1024, 4 * 1024),
        rtos=RTOSModel(context_switch_cycles=cs_cycles),
    )
    design.add_bus("sysbus")
    design.add_channel(1, "frames", "sysbus")
    design.add_process("producer", PRODUCER, "main", "cpu")
    design.add_process("consumer", CONSUMER, "main", "cpu")
    return design


def main():
    table = Table(
        ["context switch", "makespan", "producer", "consumer", "switches"],
        title="Two tasks on one CPU under a timed RTOS model",
    )
    for cs_cycles in (0, 100, 500, 2000):
        model = generate_tlm(build(cs_cycles), timed=True)
        result = model.run()
        share = model.cpu_shares["cpu"]
        table.add_row(
            "%d cycles" % cs_cycles,
            fmt_cycles(result.makespan_cycles),
            fmt_cycles(result.process("producer").cycles),
            fmt_cycles(result.process("consumer").cycles),
            share.n_context_switches,
        )
    print(table.render())
    print()
    print("Computation cycles per task are mapping-independent; the "
          "makespan grows with scheduler overhead because the tasks "
          "ping-pong on the shared processor.")


if __name__ == "__main__":
    main()
