"""Design-space exploration with timed TLMs — the paper's headline use case.

The MP3 decoder (Fig. 6) is mapped onto four platform variants (SW, SW+1,
SW+2, SW+4) and the MicroBlaze's caches are swept.  Every point is evaluated
with an automatically generated *timed TLM only* — no ISS, no RTL — which is
exactly why the technique matters: the whole sweep takes seconds.

The script then picks the cheapest design meeting a frame-rate goal, using
the number of HW units as an area proxy.  Pass a worker count to fan the
points out over a process pool (results are identical — see
docs/performance.md):

Run:  python examples/mp3_design_space.py [workers]
"""

import sys

from repro.apps.mp3 import Mp3Params
from repro.explore import explore, mp3_design_points
from repro.reporting import Table, fmt_cycles

CACHE_CONFIGS = ((2 * 1024, 2 * 1024), (8 * 1024, 4 * 1024),
                 (16 * 1024, 16 * 1024))
N_FRAMES = 2
#: Performance goal: decode a frame within this many CPU cycles.
CYCLES_PER_FRAME_GOAL = 1_800_000


def main(workers=1):
    params = Mp3Params()
    points = mp3_design_points(
        params, n_frames=N_FRAMES, seed=7, cache_configs=CACHE_CONFIGS,
    )
    result = explore(points, workers=workers)

    table = Table(
        ["Design", "est. cycles", "cycles/frame", "HW units", "meets goal"],
        title="MP3 decoder design space (timed-TLM estimates)",
    )
    best = None
    for point_result in result.results:
        point = point_result.point
        per_frame = point_result.makespan_cycles // N_FRAMES
        ok = per_frame <= CYCLES_PER_FRAME_GOAL
        table.add_row(
            point.name,
            fmt_cycles(point_result.makespan_cycles),
            fmt_cycles(per_frame),
            point.area,
            "yes" if ok else "no",
        )
        if ok:
            key = (point.area, per_frame)
            if best is None or key < best[0]:
                best = (key, point.meta["variant"],
                        (point.meta["icache"], point.meta["dcache"]),
                        per_frame)

    print(table.render())
    print()
    print("Swept %d design points in %.1f s with %d worker(s) "
          "(all timed-TLM, no ISS/RTL)."
          % (len(result), result.total_seconds, result.workers))
    if best is None:
        print("No design met the %s cycles/frame goal."
              % fmt_cycles(CYCLES_PER_FRAME_GOAL))
    else:
        _, variant, (icache, dcache), per_frame = best
        print(
            "Cheapest design meeting %s cycles/frame: %s with %dk/%dk "
            "caches (%s cycles/frame)." % (
                fmt_cycles(CYCLES_PER_FRAME_GOAL), variant,
                icache // 1024, dcache // 1024, fmt_cycles(per_frame),
            )
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
