"""Design-space exploration with timed TLMs — the paper's headline use case.

The MP3 decoder (Fig. 6) is mapped onto four platform variants (SW, SW+1,
SW+2, SW+4) and the MicroBlaze's caches are swept.  Every point is evaluated
with an automatically generated *timed TLM only* — no ISS, no RTL — which is
exactly why the technique matters: the whole sweep takes seconds.

The script then picks the cheapest design meeting a frame-rate goal, using
the number of HW units as an area proxy.

Run:  python examples/mp3_design_space.py
"""

import time

from repro.apps.mp3 import VARIANTS, Mp3Params, build_design
from repro.reporting import Table, fmt_cycles
from repro.tlm import generate_tlm

CACHE_CONFIGS = ((2 * 1024, 2 * 1024), (8 * 1024, 4 * 1024),
                 (16 * 1024, 16 * 1024))
N_FRAMES = 2
#: Performance goal: decode a frame within this many CPU cycles.
CYCLES_PER_FRAME_GOAL = 1_800_000
#: Area proxy: number of custom HW units per variant.
AREA = {"SW": 0, "SW+1": 1, "SW+2": 2, "SW+4": 4}


def main():
    params = Mp3Params()
    table = Table(
        ["Design", "I/D cache", "est. cycles", "cycles/frame", "HW units",
         "meets goal"],
        title="MP3 decoder design space (timed-TLM estimates)",
    )
    sweep_start = time.perf_counter()
    best = None
    for variant in VARIANTS:
        for icache, dcache in CACHE_CONFIGS:
            design, _ = build_design(
                variant, params, n_frames=N_FRAMES, seed=7,
                icache_size=icache, dcache_size=dcache,
            )
            result = generate_tlm(design, timed=True).run()
            per_frame = result.makespan_cycles // N_FRAMES
            ok = per_frame <= CYCLES_PER_FRAME_GOAL
            table.add_row(
                variant,
                "%dk/%dk" % (icache // 1024, dcache // 1024),
                fmt_cycles(result.makespan_cycles),
                fmt_cycles(per_frame),
                AREA[variant],
                "yes" if ok else "no",
            )
            if ok:
                key = (AREA[variant], per_frame)
                if best is None or key < best[0]:
                    best = (key, variant, (icache, dcache), per_frame)
    sweep_seconds = time.perf_counter() - sweep_start

    print(table.render())
    print()
    print("Swept %d design points in %.1f s (all timed-TLM, no ISS/RTL)."
          % (len(VARIANTS) * len(CACHE_CONFIGS), sweep_seconds))
    if best is None:
        print("No design met the %s cycles/frame goal."
              % fmt_cycles(CYCLES_PER_FRAME_GOAL))
    else:
        _, variant, (icache, dcache), per_frame = best
        print(
            "Cheapest design meeting %s cycles/frame: %s with %dk/%dk "
            "caches (%s cycles/frame)." % (
                fmt_cycles(CYCLES_PER_FRAME_GOAL), variant,
                icache // 1024, dcache // 1024, fmt_cycles(per_frame),
            )
        )


if __name__ == "__main__":
    main()
