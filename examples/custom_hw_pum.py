"""Retargeting to a brand-new custom accelerator — the Fig.-4 workflow.

Defines a PUM for a new "FIR-MAC" accelerator from scratch (non-pipelined
spatial datapath, dual-port SRAM, four MAC units), saves/loads it as JSON
(as a platform-capture tool would), and estimates the FIR kernel on it, on
the stock DCT-HW datapath and on the MicroBlaze.  No estimator code changes
are needed for the new PE — that is the retargetability claim.

Run:  python examples/custom_hw_pum.py
"""

import os
import tempfile

from repro.api import compile_cmini
from repro.apps import fir_source
from repro.cdfg.interp import Interpreter
from repro.estimation import annotate_ir_program, estimated_total_cycles
from repro.pum import dct_hw, load_pum, microblaze, save_pum
from repro.pum.model import (
    ExecutionModel,
    FunctionalUnit,
    OpMapping,
    Pipeline,
    PUM,
)
from repro.reporting import Table


def fir_mac_pum():
    """A MAC-heavy accelerator: 4 fused float units, dual-port SRAM."""
    units = [
        FunctionalUnit("agu", "ALU", 2, {"int": 1}),
        FunctionalUnit("mul", "MUL", 1, {"mul": 2}),
        FunctionalUnit("div", "DIV", 1, {"div": 12}),
        FunctionalUnit("mac", "FPU", 4, {"add": 1, "mul": 2, "div": 10}),
        FunctionalUnit("sram", "MEM", 2, {"access": 1}),
        FunctionalUnit("seq", "BR", 1, {"resolve": 1}),
    ]
    mappings = {
        opclass: OpMapping(0, 0, {0: (kind, mode)})
        for opclass, (kind, mode) in {
            "alu": ("ALU", "int"), "move": ("ALU", "int"),
            "mul": ("MUL", "mul"), "div": ("DIV", "div"),
            "falu": ("FPU", "add"), "fmul": ("FPU", "mul"),
            "fdiv": ("FPU", "div"),
            "load": ("MEM", "access"), "store": ("MEM", "access"),
            "branch": ("BR", "resolve"), "call": ("BR", "resolve"),
            "comm": ("MEM", "access"),
        }.items()
    }
    return PUM(
        "FIR-MAC",
        ExecutionModel("list", mappings),
        units,
        [Pipeline("datapath", ["EXE"], width=None)],
        frequency_mhz=150.0,
    )


def estimate_total(source, pum, entry="main"):
    ir = compile_cmini(source)
    annotate_ir_program(ir, pum)
    interp = Interpreter(ir)
    interp.call(entry)
    return estimated_total_cycles(ir, interp.block_counts)


def main():
    source = fir_source(n_taps=16, n_samples=128)

    # Round-trip the new PUM through JSON, like a platform database would.
    custom = fir_mac_pum()
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fir_mac.json")
        save_pum(custom, path)
        custom = load_pum(path)
        print("Loaded PUM %r from %s" % (custom.name, path))

    table = Table(
        ["PE", "policy", "est. cycles", "est. time"],
        title="FIR kernel (16 taps x 128 samples) across PEs",
    )
    for pum in (microblaze(8 * 1024, 4 * 1024), dct_hw(), custom):
        cycles = estimate_total(source, pum)
        micros = cycles / pum.frequency_mhz
        table.add_row(pum.name, pum.execution.policy, cycles,
                      "%.1f us" % micros)
    print(table.render())
    print()
    print("The same estimation engine handled all three PEs; only the PUM "
          "description changed.")


if __name__ == "__main__":
    main()
