"""Quickstart: estimate a C function on two different processing elements.

This walks the paper's flow end to end on a small kernel:

1. parse CMini source into a CDFG,
2. estimate per-basic-block delays on a PUM (Algorithms 1+2),
3. generate natively-executable timed code with ``wait()`` per block,
4. run it and read off the cycle estimate.

Run:  python examples/quickstart.py
"""

from repro.api import annotate_program, compile_cmini, estimate_function
from repro.cdfg.printer import format_function
from repro.codegen import ProcessContext, generate_program
from repro.pum import dct_hw, microblaze

SOURCE = """
float window[8] = {0.5, 0.9, 1.0, 0.9, 0.5, 0.2, 0.1, 0.05};

float weighted_energy(float samples[], int n) {
  float acc = 0.0;
  for (int i = 0; i < n; i++) {
    float w = window[i % 8];
    acc += samples[i] * samples[i] * w;
  }
  return acc;
}

int main(void) {
  float buf[64];
  for (int i = 0; i < 64; i++) buf[i] = (float)(i % 9) * 0.25;
  float e = weighted_energy(buf, 64);
  return (int)(e * 100.0);
}
"""


def main():
    # -- 1. front-end: CMini -> CDFG ---------------------------------------
    ir = compile_cmini(SOURCE)
    print("Lowered program:", ir)
    print()

    # -- 2. retargetable estimation: same code, two PEs --------------------
    cpu = microblaze(icache_size=8 * 1024, dcache_size=4 * 1024)
    hw = dct_hw()
    for pum in (cpu, hw):
        delays = estimate_function(SOURCE, "weighted_energy", pum)
        print("Per-block delay estimates on %s: %s" % (pum.name, delays))
    print()

    # -- 3. annotate + generate timed native code --------------------------
    annotate_program(ir, cpu)
    print("Annotated CDFG of the kernel:")
    print(format_function(ir.function("weighted_energy")))
    print()

    generated = generate_program(ir, timed=True)

    # -- 4. execute natively; wait() calls accumulate the estimate ---------
    ctx = ProcessContext(name="quickstart")
    result = generated.entry("main")(ctx, generated.fresh_globals())
    print("main() returned %d" % result)
    print("Estimated execution on %s: %d cycles (%.1f us at %.0f MHz)" % (
        cpu.name, ctx.total_cycles,
        ctx.total_cycles / cpu.frequency_mhz, cpu.frequency_mhz,
    ))


if __name__ == "__main__":
    main()
