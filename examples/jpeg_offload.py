"""HW/SW partitioning of a JPEG-style encoder — the Fig.-4 DCT in context.

The paper's Fig. 4 shows the PUM of a DCT custom-HW unit.  This example puts
that unit to work: a block-based image encoder (level shift → 2-D DCT →
quantisation → zigzag → run-length stats) is evaluated all-software and with
the DCT offloaded to the custom unit, using calibrated timed TLMs, and the
TLM's predicted speedup is validated against the cycle-accurate PCAM.

Run:  python examples/jpeg_offload.py
"""

from repro.apps.jpeg import build_jpeg_design
from repro.calibration import calibrate_pum
from repro.cycle import run_pcam
from repro.pum import microblaze
from repro.reporting import Table, fmt_cycles, pct_error
from repro.tlm import generate_tlm

N_BLOCKS = 4
CONFIG = (8 * 1024, 4 * 1024)


def main():
    # Calibrate the CPU's statistical models on a different image.
    cal = calibrate_pum(
        microblaze(),
        lambda i, d: build_jpeg_design(
            False, n_blocks=2, seed=77, icache_size=i, dcache_size=d
        ),
        [CONFIG],
    )

    table = Table(
        ["mapping", "TLM estimate", "board (PCAM)", "TLM error"],
        title="JPEG encoder, %d blocks, %dk/%dk caches"
              % (N_BLOCKS, CONFIG[0] // 1024, CONFIG[1] // 1024),
    )
    estimates = {}
    boards = {}
    for offload in (False, True):
        name = "CPU + DCT-HW" if offload else "all-SW"
        tlm = generate_tlm(
            build_jpeg_design(
                offload, n_blocks=N_BLOCKS,
                icache_size=CONFIG[0], dcache_size=CONFIG[1],
                memory_model=cal.memory_model,
                branch_model=cal.branch_model,
            ),
            timed=True,
        ).run()
        board = run_pcam(build_jpeg_design(
            offload, n_blocks=N_BLOCKS,
            icache_size=CONFIG[0], dcache_size=CONFIG[1],
        ))
        estimates[offload] = tlm.makespan_cycles
        boards[offload] = board.makespan_cycles
        table.add_row(
            name,
            fmt_cycles(tlm.makespan_cycles),
            fmt_cycles(board.makespan_cycles),
            "%+.1f%%" % pct_error(tlm.makespan_cycles, board.makespan_cycles),
        )
    print(table.render())
    print()
    predicted = estimates[False] / estimates[True]
    actual = boards[False] / boards[True]
    print("Speedup from DCT offload: predicted %.2fx, actual %.2fx"
          % (predicted, actual))


if __name__ == "__main__":
    main()
