"""Tests for the top-level convenience API (repro.api)."""

from repro import annotate_program, build_timed_tlm, compile_cmini, estimate_function
from repro.cdfg.ir import IRProgram
from repro.pum import dct_hw, microblaze
from repro.tlm import Design

SRC = """
int square(int x) { return x * x; }
int main(void) {
  int s = 0;
  for (int i = 0; i < 10; i++) s += square(i);
  return s;
}
"""


class TestCompile:
    def test_compile_returns_ir_program(self):
        ir = compile_cmini(SRC)
        assert isinstance(ir, IRProgram)
        assert set(ir.functions) == {"square", "main"}


class TestEstimate:
    def test_estimate_from_source(self):
        delays = estimate_function(SRC, "square", microblaze())
        assert all(isinstance(d, int) for d in delays.values())
        assert sum(delays.values()) > 0

    def test_estimate_from_ir(self):
        ir = compile_cmini(SRC)
        delays = estimate_function(ir, "main", dct_hw())
        assert set(delays) == {b.label for b in ir.function("main").blocks}


class TestAnnotate:
    def test_annotate_fills_all_blocks(self):
        ir = annotate_program(SRC, microblaze())
        for func in ir.functions.values():
            for block in func.blocks:
                assert block.delay is not None

    def test_annotate_accepts_ir(self):
        ir = compile_cmini(SRC)
        returned = annotate_program(ir, microblaze())
        assert returned is ir


class TestBuildTimedTlm:
    def test_builds_runnable_model(self):
        design = Design("api-test")
        design.add_pe("cpu", microblaze())
        design.add_process("p", SRC, "main", "cpu")
        model = build_timed_tlm(design)
        result = model.run()
        assert result.process("p").return_value == sum(i * i for i in range(10))
        assert result.makespan_cycles > 0

    def test_package_exports(self):
        import repro

        assert repro.__version__
        for name in ("compile_cmini", "estimate_function",
                     "annotate_program", "build_timed_tlm"):
            assert hasattr(repro, name)
