"""Watchdog tests: wall-clock, horizon and livelock limits on both process
backends, plus blocked-process naming in deadlock reports."""

import pytest

from repro.simkernel import (
    DeadlockError,
    HorizonExceeded,
    Kernel,
    LivelockError,
    WallClockExceeded,
    Watchdog,
    WatchdogError,
)


def thread_spinner(kernel):
    """A thread-backed process that waits 0 forever (no time progress)."""

    def body(p):
        while True:
            p.wait(0.0)

    return body


def gen_spinner(kernel):
    """The generator-backed twin of :func:`thread_spinner`."""

    def body(p):
        while True:
            yield 0.0

    return body


SPINNERS = [("thread", thread_spinner), ("generator", gen_spinner)]


class TestValidation:
    def test_rejects_nonpositive_wall(self):
        with pytest.raises(ValueError):
            Watchdog(max_wall_seconds=0)

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            Watchdog(max_sim_time=-1.0)

    def test_rejects_zero_stall_limit(self):
        with pytest.raises(ValueError):
            Watchdog(max_stalled_activations=0)

    def test_error_hierarchy(self):
        for cls in (WallClockExceeded, HorizonExceeded, LivelockError):
            assert issubclass(cls, WatchdogError)


class TestLivelock:
    @pytest.mark.parametrize("backend,make", SPINNERS)
    def test_spinner_triggers_livelock(self, backend, make):
        kernel = Kernel()
        kernel.add_process("spin_%s" % backend, make(kernel))
        watchdog = Watchdog(max_stalled_activations=100)
        with pytest.raises(LivelockError) as exc_info:
            kernel.run(watchdog=watchdog)
        assert "spin_%s" % backend in str(exc_info.value)
        assert "livelock" in str(exc_info.value)

    def test_mixed_backends_both_named(self):
        kernel = Kernel()
        kernel.add_process("spin_t", thread_spinner(kernel))
        kernel.add_process("spin_g", gen_spinner(kernel))
        with pytest.raises(LivelockError) as exc_info:
            kernel.run(watchdog=Watchdog(max_stalled_activations=100))
        message = str(exc_info.value)
        assert "spin_t" in message and "spin_g" in message

    @pytest.mark.parametrize("backend,make", SPINNERS)
    def test_time_progress_resets_stall_counter(self, backend, make):
        kernel = Kernel()
        done = []

        def body(p):
            for _ in range(50):
                p.wait(0.0)
                p.wait(1.0)  # real progress between the zero-waits
            done.append(True)

        kernel.add_process("worker", body)
        end = kernel.run(watchdog=Watchdog(max_stalled_activations=40))
        assert done and end == 50.0

    def test_no_watchdog_spinner_needs_until(self):
        # Without a watchdog the spinner runs forever at t=0; `until` cannot
        # save us (time never reaches it) — this is exactly the livelock the
        # watchdog exists for, so just confirm the watchdog path differs
        # from a plain bounded run.
        kernel = Kernel()

        def body(p):
            for _ in range(10):
                p.wait(1.0)

        kernel.add_process("finite", body)
        assert kernel.run(watchdog=Watchdog(max_stalled_activations=5)) == 10.0


class TestHorizon:
    @pytest.mark.parametrize("backend", ["thread", "generator"])
    def test_horizon_aborts(self, backend):
        kernel = Kernel()

        if backend == "thread":
            def body(p):
                while True:
                    p.wait(10.0)
        else:
            def body(p):
                while True:
                    yield 10.0

        kernel.add_process("ticker", body)
        with pytest.raises(HorizonExceeded):
            kernel.run(watchdog=Watchdog(max_sim_time=55.0))

    def test_run_ending_before_horizon_is_clean(self):
        kernel = Kernel()

        def body(p):
            p.wait(5.0)

        kernel.add_process("short", body)
        assert kernel.run(watchdog=Watchdog(max_sim_time=100.0)) == 5.0

    def test_until_still_quiet_with_watchdog(self):
        kernel = Kernel()

        def body(p):
            while True:
                yield 10.0

        kernel.add_process("ticker", body)
        end = kernel.run(until=30.0,
                         watchdog=Watchdog(max_sim_time=1000.0))
        assert end == 30.0


class TestWallClock:
    @pytest.mark.parametrize("backend,make", SPINNERS)
    def test_wall_budget_aborts_spinner(self, backend, make):
        kernel = Kernel()
        kernel.add_process("spin", make(kernel))
        watchdog = Watchdog(max_wall_seconds=0.05, wall_check_interval=64)
        with pytest.raises((WallClockExceeded, LivelockError)):
            # A pure spinner may hit either guard first when both armed;
            # with only the wall guard it must be WallClockExceeded.
            kernel.run(watchdog=watchdog)

    def test_wall_budget_only(self):
        kernel = Kernel()
        kernel.add_process("spin", gen_spinner(kernel))
        watchdog = Watchdog(max_wall_seconds=0.05, wall_check_interval=16)
        with pytest.raises(WallClockExceeded) as exc_info:
            kernel.run(watchdog=watchdog)
        assert "wall" in str(exc_info.value)


class TestDeadlockNaming:
    @pytest.mark.parametrize("backend", ["thread", "generator"])
    def test_deadlock_error_names_blocked_processes(self, backend):
        from repro.simkernel import Bus, BusChannel

        kernel = Kernel()
        bus = Bus(kernel, "bus0")
        channel = BusChannel(kernel, "c0", bus)

        if backend == "thread":
            def consumer(p):
                channel.recv(p, 4)  # nobody ever sends
        else:
            def consumer(p):
                yield from channel.recv_gen(p, 4)

        kernel.add_process("starved_reader", consumer)
        with pytest.raises(DeadlockError) as exc_info:
            kernel.run()
        assert "starved_reader" in str(exc_info.value)

    def test_deadlock_with_watchdog_still_reports(self):
        from repro.simkernel import Bus, BusChannel

        kernel = Kernel()
        bus = Bus(kernel, "bus0")
        channel = BusChannel(kernel, "c0", bus)

        def consumer(p):
            yield from channel.recv_gen(p, 1)

        kernel.add_process("blocked_rx", consumer)
        with pytest.raises(DeadlockError) as exc_info:
            kernel.run(watchdog=Watchdog(max_sim_time=1e9))
        assert "blocked_rx" in str(exc_info.value)
