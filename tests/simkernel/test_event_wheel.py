"""The indexed event-wheel scheduler vs the binary heap.

The contract is bit-identity: for any process soup, the wheel must produce
the heap's exact activation trace, end time and counters — the wheel is a
wall-clock optimisation, never a semantics change.  These tests throw
seeded pseudo-random soups (mixed backends, zero-waits, channel wake
chains) at both schedulers and diff the traces, then pin the auto-selection
lifecycle, the ``until`` resumption behaviour, and the traffic-scale
deadlock/watchdog behaviours that ride on the wheel (summary capping,
batch-aware stall accounting).
"""

import random

import pytest

from repro.simkernel import (
    Bus,
    BusChannel,
    DeadlockError,
    Kernel,
    LivelockError,
    SUMMARY_CAP,
    WHEEL_THRESHOLD,
    Watchdog,
)


def _random_soup(kernel, seed, n_waiters=24, n_pairs=4, n_threads=2):
    """Deterministically pseudo-random processes: generator waiters with
    zero-wait bursts, channel ping-pong pairs, and thread-backed stragglers.
    The schedules are precomputed from ``seed`` so every kernel gets an
    identical workload."""
    rng = random.Random("wheel-soup:%d" % seed)

    for index in range(n_waiters):
        waits = [
            rng.choice((0.0, 1.0, 1.0, 2.0, 5.0, 10.0))
            for _ in range(rng.randrange(3, 12))
        ]

        def waiter(waits=waits):
            def body(p):
                for duration in waits:
                    yield duration
            return body

        kernel.add_process("w%d" % index, waiter())

    bus = Bus(kernel, "soup-bus", cycle_ns=10.0)
    for index in range(n_pairs):
        channel = BusChannel(kernel, "c%d" % index, bus)
        burst = rng.randrange(1, 5)
        gap = rng.choice((0.0, 3.0, 7.0))

        def sender(channel=channel, burst=burst, gap=gap):
            def body(p):
                for value in range(burst):
                    yield from channel.send_gen(p, [value, value + 1])
                    if gap:
                        yield gap
            return body

        def receiver(channel=channel, burst=burst):
            def body(p):
                for _ in range(burst):
                    yield from channel.recv_gen(p, 2)
            return body

        kernel.add_process("s%d" % index, sender())
        kernel.add_process("r%d" % index, receiver())

    for index in range(n_threads):
        waits = [rng.choice((1.0, 4.0)) for _ in range(3)]

        def threaded(waits=waits):
            def body(p):
                for duration in waits:
                    p.wait(duration)
            return body

        kernel.add_process("t%d" % index, threaded())


def _run_traced(scheduler, seed, until=None):
    kernel = Kernel(scheduler=scheduler)
    trace = []
    kernel.trace = lambda when, name: trace.append((when, name))
    _random_soup(kernel, seed)
    end = kernel.run(until=until)
    return end, trace, kernel.kernel_stats()


class TestBitIdentity:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_soup_traces_match(self, seed):
        heap_end, heap_trace, heap_stats = _run_traced("heap", seed)
        wheel_end, wheel_trace, wheel_stats = _run_traced("wheel", seed)
        assert heap_end == wheel_end
        assert heap_trace == wheel_trace
        assert heap_stats["activations"] == wheel_stats["activations"]
        assert (heap_stats["events_scheduled"]
                == wheel_stats["events_scheduled"])
        assert (heap_stats["channel_fastpath_hits"]
                == wheel_stats["channel_fastpath_hits"])

    @pytest.mark.parametrize("seed", range(3))
    def test_until_cut_and_resume_match(self, seed):
        ends = {}
        traces = {}
        for scheduler in ("heap", "wheel"):
            kernel = Kernel(scheduler=scheduler)
            trace = []
            kernel.trace = lambda when, name, t=trace: t.append((when, name))
            _random_soup(kernel, seed)
            cut_end = kernel.run(until=4.5)
            assert cut_end == 4.5
            ends[scheduler] = kernel.run()
            traces[scheduler] = trace
        assert ends["heap"] == ends["wheel"]
        assert traces["heap"] == traces["wheel"]

    def test_untraced_counters_match_traced(self):
        # The wheel's fast drain only runs untraced; its counters must
        # agree with the traced merge path's.
        _, _, traced = _run_traced("wheel", 1)
        kernel = Kernel(scheduler="wheel")
        _random_soup(kernel, 1)
        kernel.run()
        untraced = kernel.kernel_stats()
        for key in ("activations", "events_scheduled",
                    "channel_fastpath_hits"):
            assert untraced[key] == traced[key]


class TestSchedulerLifecycle:
    def test_unknown_scheduler_rejected(self):
        from repro.simkernel import SimulationError

        with pytest.raises(SimulationError):
            Kernel(scheduler="btree")

    def test_auto_stays_on_heap_below_threshold(self):
        kernel = Kernel()

        def body(p):
            yield 1.0

        for index in range(WHEEL_THRESHOLD - 1):
            kernel.add_process("p%d" % index, body)
        kernel.run()
        stats = kernel.kernel_stats()
        assert stats["scheduler"] == "heap"
        assert stats["buckets_drained"] == 0

    def test_auto_switches_to_wheel_at_threshold(self):
        kernel = Kernel()

        def body(p):
            yield 1.0

        for index in range(WHEEL_THRESHOLD):
            kernel.add_process("p%d" % index, body)
        kernel.run()
        stats = kernel.kernel_stats()
        assert stats["scheduler"] == "wheel"
        assert stats["buckets_drained"] > 0

    def test_forced_wheel_with_two_processes(self):
        kernel = Kernel(scheduler="wheel")
        order = []

        def body(name):
            def gen(p):
                order.append((kernel.now, name))
                yield 2.0
                order.append((kernel.now, name))
            return gen

        kernel.add_process("a", body("a"))
        kernel.add_process("b", body("b"))
        assert kernel.run() == 2.0
        assert order == [(0.0, "a"), (0.0, "b"), (2.0, "a"), (2.0, "b")]
        assert kernel.kernel_stats()["scheduler"] == "wheel"

    def test_stats_before_run_report_requested_scheduler(self):
        assert Kernel().kernel_stats()["scheduler"] == "auto"
        assert Kernel(scheduler="wheel").kernel_stats()["scheduler"] == "wheel"


class TestDeadlockReporting:
    """Satellite: the deadlock reporter at ~1k blocked processes."""

    N = 1000

    def _blocked_kernel(self, scheduler):
        kernel = Kernel(scheduler=scheduler)
        bus = Bus(kernel, "b")
        channel = BusChannel(kernel, "starved", bus)

        def body(p):
            yield from channel.recv_gen(p, 1)  # no sender: blocks forever

        for index in range(self.N):
            kernel.add_process("blocked%04d" % index, body)
        return kernel

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_thousand_blocked_processes_summarised(self, scheduler):
        kernel = self._blocked_kernel(scheduler)
        with pytest.raises(DeadlockError) as exc_info:
            kernel.run()
        message = str(exc_info.value)
        # The first SUMMARY_CAP processes are named, the rest are a count.
        assert "blocked0000" in message
        assert "blocked%04d" % (SUMMARY_CAP - 1) in message
        assert "blocked%04d" % SUMMARY_CAP not in message
        assert "... and %d more" % (self.N - SUMMARY_CAP) in message
        # The report stays readable, not O(n)-sized.
        assert len(message) < 1200

    def test_ready_queue_mass_wake(self):
        """~1k receivers on one channel woken by a single send must drain
        through the FIFO ready queue identically on both schedulers."""
        ends = {}
        for scheduler in ("heap", "wheel"):
            kernel = Kernel(scheduler=scheduler)
            bus = Bus(kernel, "b", arbitration_cycles=0)
            channel = BusChannel(kernel, "fanout", bus)
            done = []

            def receiver(index):
                def body(p):
                    yield from channel.recv_gen(p, 1)
                    done.append(index)
                return body

            def sender(p):
                yield 5.0
                yield from channel.send_gen(p, list(range(self.N)))

            for index in range(self.N):
                kernel.add_process("rx%04d" % index, receiver(index))
            kernel.add_process("tx", sender)
            ends[scheduler] = (kernel.run(), tuple(done))
        assert ends["heap"] == ends["wheel"]
        assert len(ends["heap"][1]) == self.N


class TestBatchStallAccounting:
    """Satellite: same-timestamp batches must not inflate the watchdog's
    stall counter on either scheduler."""

    N = 200  # well above the stall limit below

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_lockstep_batches_do_not_trip_livelock(self, scheduler):
        kernel = Kernel(scheduler=scheduler)

        def body(p):
            for _ in range(5):
                yield 10.0

        for index in range(self.N):
            kernel.add_process("batch%03d" % index, body)
        watchdog = Watchdog(max_stalled_activations=self.N // 4)
        assert kernel.run(watchdog=watchdog) == 50.0

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_genuine_zero_delay_livelock_still_trips(self, scheduler):
        kernel = Kernel(scheduler=scheduler)

        def spinner(p):
            while True:
                yield 0.0

        def bystander(p):
            yield 10.0

        # Enough processes that auto would also pick the wheel; scheduler
        # is forced anyway to pin both paths.
        for index in range(self.N):
            kernel.add_process("spin%03d" % index, spinner)
        kernel.add_process("ok", bystander)
        with pytest.raises(LivelockError) as exc_info:
            kernel.run(watchdog=Watchdog(max_stalled_activations=self.N * 3))
        assert "livelock" in str(exc_info.value)

    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    def test_wake_chain_still_counts_toward_stall(self, scheduler):
        """Zero-delay channel feedback (the real livelock shape) is counted
        even though it happens inside one timestamp."""
        kernel = Kernel(scheduler=scheduler)
        # Bus-less channels: the hops cost no simulated time, so the
        # feedback loop spins forever inside one timestamp.
        ping = BusChannel(kernel, "ping")
        pong = BusChannel(kernel, "pong")

        def left(p):
            while True:
                yield from ping.send_gen(p, [1])
                yield from pong.recv_gen(p, 1)

        def right(p):
            while True:
                yield from ping.recv_gen(p, 1)
                yield from pong.send_gen(p, [1])

        kernel.add_process("left", left)
        kernel.add_process("right", right)
        with pytest.raises(LivelockError):
            kernel.run(watchdog=Watchdog(max_stalled_activations=100))
