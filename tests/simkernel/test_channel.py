"""Unit tests for buses and bus channels."""

import pytest

from repro.simkernel import Bus, BusChannel, ChannelMap, Kernel, SimulationError


class TestBusTiming:
    def test_transfer_time_formula(self):
        kernel = Kernel()
        bus = Bus(kernel, "b", cycle_ns=10.0, words_per_cycle=2,
                  arbitration_cycles=3)
        # 5 words at 2 words/cycle = 3 cycles + 3 arbitration = 6 cycles.
        assert bus.transfer_time(5) == 60.0

    def test_transfer_time_rounds_up(self):
        kernel = Kernel()
        bus = Bus(kernel, "b", words_per_cycle=4, arbitration_cycles=0)
        assert bus.transfer_time(1) == bus.transfer_time(4)

    def test_invalid_width(self):
        with pytest.raises(SimulationError):
            Bus(Kernel(), "b", words_per_cycle=0)

    def test_contention_serialises_transactions(self):
        kernel = Kernel()
        bus = Bus(kernel, "b", cycle_ns=10.0, words_per_cycle=1,
                  arbitration_cycles=0)
        completions = []

        def sender(name):
            def body(p):
                bus.occupy(p, 10)  # 100 ns
                completions.append((name, kernel.now))
            return body

        kernel.add_process("s1", sender("s1"))
        kernel.add_process("s2", sender("s2"))
        kernel.run()
        assert completions == [("s1", 100.0), ("s2", 200.0)]

    def test_statistics(self):
        kernel = Kernel()
        bus = Bus(kernel, "b")

        def body(p):
            bus.occupy(p, 8)
            bus.occupy(p, 8)

        kernel.add_process("p", body)
        kernel.run()
        assert bus.total_transactions == 2
        assert bus.total_words == 16


class TestBusChannel:
    def test_fifo_order(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "c", Bus(kernel, "b"))
        got = []

        def producer(p):
            channel.send(p, [1, 2])
            channel.send(p, [3])

        def consumer(p):
            got.extend(channel.recv(p, 1))
            got.extend(channel.recv(p, 2))

        kernel.add_process("prod", producer)
        kernel.add_process("cons", consumer)
        kernel.run()
        assert got == [1, 2, 3]

    def test_receiver_blocks_until_data(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "c", Bus(kernel, "b", cycle_ns=10.0,
                                              arbitration_cycles=0))
        arrival = []

        def producer(p):
            p.wait(100.0)
            channel.send(p, [7])

        def consumer(p):
            value = channel.recv(p, 1)
            arrival.append((value, kernel.now))

        kernel.add_process("prod", producer)
        kernel.add_process("cons", consumer)
        kernel.run()
        assert arrival[0][0] == [7]
        assert arrival[0][1] >= 100.0

    def test_channel_without_bus_is_instant(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "c", bus=None)
        times = []

        def producer(p):
            channel.send(p, [1])
            times.append(kernel.now)

        def consumer(p):
            channel.recv(p, 1)
            times.append(kernel.now)

        kernel.add_process("prod", producer)
        kernel.add_process("cons", consumer)
        kernel.run()
        assert times == [0.0, 0.0]

    def test_two_receivers_split_stream(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "c", bus=None)
        taken = {}

        def producer(p):
            for chunk in ([1], [2], [3], [4]):
                p.wait(10.0)
                channel.send(p, chunk)

        def consumer(name):
            def body(p):
                taken[name] = channel.recv(p, 2)
            return body

        kernel.add_process("prod", producer)
        kernel.add_process("c1", consumer("c1"))
        kernel.add_process("c2", consumer("c2"))
        kernel.run()
        assert sorted(taken["c1"] + taken["c2"]) == [1, 2, 3, 4]

    def test_pending_words(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "c", bus=None)

        def producer(p):
            channel.send(p, [1, 2, 3])

        kernel.add_process("prod", producer)
        kernel.run()
        assert channel.pending_words == 3
        assert channel.total_sent == 3


class TestChannelMap:
    def test_lookup(self):
        kernel = Kernel()
        cmap = ChannelMap()
        chan = BusChannel(kernel, "c", None)
        cmap.add(3, chan)
        assert cmap.get(3) is chan
        assert len(cmap) == 1

    def test_duplicate_rejected(self):
        cmap = ChannelMap()
        cmap.add(1, object())
        with pytest.raises(SimulationError):
            cmap.add(1, object())

    def test_missing_raises(self):
        with pytest.raises(SimulationError):
            ChannelMap().get(9)
