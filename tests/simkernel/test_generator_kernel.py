"""Tests for the generator (coroutine) process backend and the scheduler
counters, plus regressions for ``run(until=...)`` resumption and deadlock
diagnostics."""

import pytest

from repro.simkernel import (
    BusChannel,
    DeadlockError,
    GeneratorProcess,
    Kernel,
    SimulationError,
)


class TestGeneratorProcesses:
    def test_generator_function_gets_trampoline_backend(self):
        kernel = Kernel()

        def gen_body(p):
            yield 1.0

        def thread_body(p):
            p.wait(1.0)

        gp = kernel.add_process("g", gen_body)
        tp = kernel.add_process("t", thread_body)
        assert isinstance(gp, GeneratorProcess)
        assert gp.is_generator and not tp.is_generator
        kernel.run()

    def test_yielded_durations_advance_time(self):
        kernel = Kernel()
        times = []

        def body(p):
            times.append(kernel.now)
            yield 5.0
            times.append(kernel.now)
            yield 2.5
            times.append(kernel.now)

        kernel.add_process("p", body)
        end = kernel.run()
        assert times == [0.0, 5.0, 7.5]
        assert end == 7.5

    def test_zero_yield_is_allowed(self):
        kernel = Kernel()

        def body(p):
            yield 0.0

        kernel.add_process("p", body)
        assert kernel.run() == 0.0

    def test_negative_yield_rejected(self):
        kernel = Kernel()

        def body(p):
            yield -1.0

        kernel.add_process("p", body)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_exception_in_generator_propagates(self):
        kernel = Kernel()

        def body(p):
            yield 1.0
            raise ValueError("boom")

        kernel.add_process("p", body)
        with pytest.raises(SimulationError) as info:
            kernel.run()
        assert "boom" in str(info.value.__cause__)

    def test_imperative_wait_on_generator_process_rejected(self):
        kernel = Kernel()
        process = kernel.add_process("g", lambda p: iter(()))
        # add_process treats the lambda as a thread target; build directly.
        gp = GeneratorProcess(kernel, "g2", None)
        with pytest.raises(SimulationError):
            gp.wait(1.0)
        with pytest.raises(SimulationError):
            gp._suspend()
        process._kill()

    def test_mixed_backends_share_one_timeline(self):
        def run_once(gen_first):
            kernel = Kernel()
            log = []

            def gen_body(p):
                for _ in range(3):
                    yield 2.0
                    log.append(("g", kernel.now))

            def thread_body(p):
                for _ in range(2):
                    p.wait(3.0)
                    log.append(("t", kernel.now))

            if gen_first:
                kernel.add_process("g", gen_body)
                kernel.add_process("t", thread_body)
            else:
                kernel.add_process("t", thread_body)
                kernel.add_process("g", gen_body)
            kernel.run()
            return log

        log = run_once(True)
        # at t=6.0 the thread process fires first: its event was scheduled
        # at t=3.0, before the generator's (scheduled at t=4.0)
        assert log == [("g", 2.0), ("t", 3.0), ("g", 4.0), ("t", 6.0),
                       ("g", 6.0)]
        assert run_once(True) == log

    def test_generator_channel_rendezvous(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "pipe")
        got = []

        def producer(p):
            yield 4.0
            yield from channel.send_gen(p, [1, 2, 3])

        def consumer(p):
            values = yield from channel.recv_gen(p, 3)
            got.append((kernel.now, values))

        kernel.add_process("prod", producer)
        kernel.add_process("cons", consumer)
        kernel.run()
        assert got == [(4.0, [1, 2, 3])]


class TestKernelCounters:
    def test_counters_start_at_zero(self):
        kernel = Kernel()
        assert kernel.kernel_stats() == {
            "activations": 0,
            "events_scheduled": 0,
            "channel_fastpath_hits": 0,
            "buckets_drained": 0,
            "scheduler": "auto",
        }

    def test_activations_and_events_counted(self):
        kernel = Kernel()

        def body(p):
            yield 1.0
            yield 1.0

        kernel.add_process("p", body)
        kernel.run()
        stats = kernel.kernel_stats()
        # one start event + two timed waits, each resumed once, plus the
        # final resumption that finishes the generator
        assert stats["events_scheduled"] == 3
        assert stats["activations"] == 3
        assert stats["channel_fastpath_hits"] == 0

    def test_fastpath_counts_channel_wakes(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "pipe")

        def producer(p):
            yield 1.0
            yield from channel.send_gen(p, [42])

        def consumer(p):
            yield from channel.recv_gen(p, 1)

        kernel.add_process("prod", producer)
        kernel.add_process("cons", consumer)
        kernel.run()
        assert kernel.kernel_stats()["channel_fastpath_hits"] == 1

    def test_counters_identical_across_backends(self):
        def run_once(use_generators):
            kernel = Kernel()
            channel = BusChannel(kernel, "pipe")

            if use_generators:
                def producer(p):
                    yield 2.0
                    yield from channel.send_gen(p, [1, 2])

                def consumer(p):
                    yield from channel.recv_gen(p, 2)
                    yield 1.0
            else:
                def producer(p):
                    p.wait(2.0)
                    channel.send(p, [1, 2])

                def consumer(p):
                    channel.recv(p, 2)
                    p.wait(1.0)

            kernel.add_process("prod", producer)
            kernel.add_process("cons", consumer)
            end = kernel.run()
            return end, kernel.kernel_stats()

        assert run_once(True) == run_once(False)


class TestUntilResume:
    """``run(until=...)`` must keep the first over-horizon event queued so a
    later ``run()`` picks up exactly where the simulation stopped."""

    def test_thread_process_resumes_after_horizon(self):
        kernel = Kernel()
        ticks = []

        def body(p):
            for _ in range(5):
                p.wait(10.0)
                ticks.append(kernel.now)

        kernel.add_process("p", body)
        assert kernel.run(until=35.0) == 35.0
        assert ticks == [10.0, 20.0, 30.0]
        assert kernel.run() == 50.0
        assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_generator_process_resumes_after_horizon(self):
        kernel = Kernel()
        ticks = []

        def body(p):
            for _ in range(4):
                yield 10.0
                ticks.append(kernel.now)

        kernel.add_process("p", body)
        assert kernel.run(until=15.0) == 15.0
        assert ticks == [10.0]
        assert kernel.run(until=25.0) == 25.0
        assert ticks == [10.0, 20.0]
        assert kernel.run() == 40.0
        assert ticks == [10.0, 20.0, 30.0, 40.0]

    def test_horizon_exactly_on_event_fires_it(self):
        kernel = Kernel()
        ticks = []

        def body(p):
            for _ in range(3):
                yield 10.0
                ticks.append(kernel.now)

        kernel.add_process("p", body)
        assert kernel.run(until=20.0) == 20.0
        assert ticks == [10.0, 20.0]


class TestDeadlockDiagnostics:
    def test_thread_deadlock_names_every_blocked_process(self):
        kernel = Kernel()
        never_a = BusChannel(kernel, "never_a")
        never_b = BusChannel(kernel, "never_b")

        def make(channel, count):
            def body(p):
                channel.recv(p, count)
            return body

        kernel.add_process("alpha", make(never_a, 1))
        kernel.add_process("beta", make(never_b, 7))
        with pytest.raises(DeadlockError) as info:
            kernel.run()
        message = str(info.value)
        assert "alpha" in message and "beta" in message
        assert "recv(never_a, 1)" in message
        assert "recv(never_b, 7)" in message

    def test_generator_deadlock_names_every_blocked_process(self):
        kernel = Kernel()
        never_a = BusChannel(kernel, "never_a")
        never_b = BusChannel(kernel, "never_b")

        def make(channel, count):
            def body(p):
                yield from channel.recv_gen(p, count)
            return body

        kernel.add_process("alpha", make(never_a, 2))
        kernel.add_process("beta", make(never_b, 5))
        with pytest.raises(DeadlockError) as info:
            kernel.run()
        message = str(info.value)
        assert "alpha" in message and "beta" in message
        assert "recv(never_a, 2)" in message
        assert "recv(never_b, 5)" in message

    def test_stop_unwinds_both_backends(self):
        kernel = Kernel()
        channel = BusChannel(kernel, "pipe")

        def gen_body(p):
            yield from channel.recv_gen(p, 1)

        def thread_body(p):
            channel.recv(p, 1)

        gp = kernel.add_process("g", gen_body)
        tp = kernel.add_process("t", thread_body)
        with pytest.raises(DeadlockError):
            kernel.run()
        # the deadlock path shuts the kernel down; both are unwound
        assert gp.finished and tp.finished
