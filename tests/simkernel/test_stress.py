"""Stress/scale tests for the simulation kernel: many processes, rings,
fan-in contention — shapes bigger than the 5-PE paper platform."""

from repro.simkernel import Bus, BusChannel, Kernel


class TestTokenRing:
    def _run_ring(self, n_processes, n_laps):
        kernel = Kernel()
        channels = [
            BusChannel(kernel, "ring%d" % i, None) for i in range(n_processes)
        ]
        log = []

        def node(index):
            def body(process):
                for _ in range(n_laps):
                    token = channels[index].recv(process, 1)[0]
                    log.append((index, token))
                    process.wait(float(index + 1))
                    channels[(index + 1) % n_processes].send(
                        process, [token + 1]
                    )
            return body

        for i in range(n_processes):
            kernel.add_process("node%d" % i, node(i))

        def seed(process):
            channels[0].send(process, [0])

        # The seed injects the token; node7's final send parks the token in
        # ring0 unconsumed once every node finished its laps.
        kernel.add_process("seed", seed)
        kernel.run()
        assert channels[0].pending_words == 1  # the retired token
        return log

    def test_token_visits_every_node_in_order(self):
        n = 8
        log = self._run_ring(n, 2)
        # Token values strictly increase and visit nodes round-robin.
        values = [token for _, token in log]
        assert values == sorted(values)
        order = [idx for idx, _ in log]
        assert order[:n] == list(range(n))
        assert len(log) == n * 2

    def test_ring_deterministic(self):
        assert self._run_ring(5, 3) == self._run_ring(5, 3)


class TestFanInContention:
    def test_many_writers_one_bus(self):
        kernel = Kernel()
        bus = Bus(kernel, "shared", cycle_ns=10.0, words_per_cycle=1,
                  arbitration_cycles=1)
        sink = BusChannel(kernel, "sink", bus)
        n_writers = 16
        words_each = 10

        def writer(i):
            def body(process):
                sink.send(process, [i] * words_each)
            return body

        received = []

        def reader(process):
            for _ in range(n_writers):
                received.extend(sink.recv(process, words_each))

        for i in range(n_writers):
            kernel.add_process("w%d" % i, writer(i))
        kernel.add_process("r", reader)
        end = kernel.run()

        # All data arrived exactly once.
        assert sorted(received) == sorted(
            [i for i in range(n_writers) for _ in range(words_each)]
        )
        # The bus serialised the transfers: total time >= sum of transfers.
        expected = sum(bus.transfer_time(words_each) for _ in range(n_writers))
        assert end >= expected
        assert bus.total_transactions == n_writers

    def test_hundred_processes_complete(self):
        kernel = Kernel()
        done = []

        def worker(i):
            def body(process):
                for _ in range(5):
                    process.wait(float((i % 7) + 1))
                done.append(i)
            return body

        for i in range(100):
            kernel.add_process("p%d" % i, worker(i))
        kernel.run()
        assert sorted(done) == list(range(100))
