"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simkernel import DeadlockError, Kernel, SimulationError


class TestTimeAdvance:
    def test_single_process_waits(self):
        kernel = Kernel()
        times = []

        def body(p):
            times.append(kernel.now)
            p.wait(5.0)
            times.append(kernel.now)
            p.wait(2.5)
            times.append(kernel.now)

        kernel.add_process("p", body)
        end = kernel.run()
        assert times == [0.0, 5.0, 7.5]
        assert end == 7.5

    def test_time_is_monotone_across_processes(self):
        kernel = Kernel()
        observed = []

        def make(delays):
            def body(p):
                for d in delays:
                    p.wait(d)
                    observed.append(kernel.now)
            return body

        kernel.add_process("a", make([3, 3, 3]))
        kernel.add_process("b", make([2, 5]))
        kernel.run()
        assert observed == sorted(observed)

    def test_zero_wait_is_allowed(self):
        kernel = Kernel()

        def body(p):
            p.wait(0.0)

        kernel.add_process("p", body)
        assert kernel.run() == 0.0

    def test_negative_wait_rejected(self):
        kernel = Kernel()

        def body(p):
            p.wait(-1.0)

        kernel.add_process("p", body)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_until_cuts_simulation(self):
        kernel = Kernel()
        ticks = []

        def body(p):
            while True:
                p.wait(10.0)
                ticks.append(kernel.now)

        kernel.add_process("p", body)
        end = kernel.run(until=35.0)
        assert end == 35.0
        assert ticks == [10.0, 20.0, 30.0]


class TestDeterminism:
    def test_same_time_events_fire_in_registration_order(self):
        kernel = Kernel()
        order = []

        def make(name):
            def body(p):
                order.append(name)
                p.wait(1.0)
                order.append(name + "'")
            return body

        for name in ("a", "b", "c"):
            kernel.add_process(name, make(name))
        kernel.run()
        assert order == ["a", "b", "c", "a'", "b'", "c'"]

    def test_repeated_runs_identical(self):
        def run_once():
            kernel = Kernel()
            log = []

            def body_a(p):
                for _ in range(3):
                    p.wait(2.0)
                    log.append(("a", kernel.now))

            def body_b(p):
                for _ in range(2):
                    p.wait(3.0)
                    log.append(("b", kernel.now))

            kernel.add_process("a", body_a)
            kernel.add_process("b", body_b)
            kernel.run()
            return log

        assert run_once() == run_once()


class TestFailures:
    def test_process_exception_propagates(self):
        kernel = Kernel()

        def body(p):
            raise ValueError("boom")

        kernel.add_process("p", body)
        with pytest.raises(SimulationError) as info:
            kernel.run()
        assert "boom" in str(info.value.__cause__)

    def test_blocked_process_reports_deadlock(self):
        from repro.simkernel import BusChannel

        kernel = Kernel()
        channel = BusChannel(kernel, "never")

        def body(p):
            channel.recv(p, 1)

        kernel.add_process("p", body)
        with pytest.raises(DeadlockError) as info:
            kernel.run()
        assert "never" in str(info.value)

    def test_trace_hook_sees_activations(self):
        kernel = Kernel()
        traced = []
        kernel.trace = lambda t, name: traced.append((t, name))

        def body(p):
            p.wait(1.0)

        kernel.add_process("p", body)
        kernel.run()
        assert traced == [(0.0, "p"), (1.0, "p")]
