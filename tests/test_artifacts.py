"""Tests for the content-addressed artifact store."""

import json
import os

import pytest

from repro import artifacts
from repro.artifacts import (
    ArtifactStore,
    CacheStats,
    content_key,
    default_store,
    register_kind,
    reset_default_store,
    store_enabled,
)


class TestContentKey:
    def test_stable_and_distinct(self):
        assert content_key("a", "b") == content_key("a", "b")
        assert content_key("a", "b") != content_key("b", "a")
        # Part boundaries matter: ("ab", "c") must not equal ("a", "bc").
        assert content_key("ab", "c") != content_key("a", "bc")

    def test_hex_digest_shape(self):
        key = content_key("anything")
        assert len(key) == 32
        int(key, 16)  # hex


class TestMemoryStore:
    def test_get_put_and_counters(self):
        store = ArtifactStore()
        assert store.get("k", "a") is None
        store.put("k", "a", 1)
        assert store.get("k", "a") == 1
        stats = store.stats("k")
        assert (stats.hits, stats.misses, stats.stored) == (1, 1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        register_kind("lru-test", max_entries=2)
        store = ArtifactStore()
        store.put("lru-test", "a", 1)
        store.put("lru-test", "b", 2)
        assert store.get("lru-test", "a") == 1  # refresh 'a'
        store.put("lru-test", "c", 3)  # evicts 'b', the LRU entry
        assert store.get("lru-test", "b") is None
        assert store.get("lru-test", "a") == 1
        assert store.get("lru-test", "c") == 3
        assert store.stats("lru-test").evicted == 1

    def test_put_same_key_is_idempotent(self):
        store = ArtifactStore()
        store.put("k", "a", 1)
        store.put("k", "a", 2)  # ignored: content-addressed entries agree
        assert store.get("k", "a") == 1
        assert store.stats("k").stored == 1

    def test_clear_resets_entries_and_stats(self):
        store = ArtifactStore()
        store.put("k", "a", 1)
        store.get("k", "a")
        store.clear("k")
        assert store.size("k") == 0
        assert store.stats("k").hits == 0
        assert store.get("k", "a") is None

    def test_items_does_not_touch_stats(self):
        store = ArtifactStore()
        store.put("k", "a", 1)
        assert store.items("k") == [("a", 1)]
        assert store.stats("k").hits == 0

    def test_counters_surface(self):
        store = ArtifactStore()
        store.put("k", "a", 1)
        store.get("k", "a")
        store.get("k", "b")
        counters = store.counters()
        assert counters["k"]["hits"] == 1
        assert counters["k"]["misses"] == 1
        assert counters["k"]["entries"] == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)


class TestDiskStore:
    KIND = "disk-test"

    @pytest.fixture(autouse=True)
    def _kind(self):
        register_kind(self.KIND, version=1, disk=True)

    def test_round_trip_across_stores(self, tmp_path):
        first = ArtifactStore(directory=str(tmp_path))
        first.put(self.KIND, "a", {"x": 1})
        # A brand-new store (cold memory) warms itself from the entry file.
        second = ArtifactStore(directory=str(tmp_path))
        assert second.get(self.KIND, "a") == {"x": 1}
        stats = second.stats(self.KIND)
        assert (stats.hits, stats.misses) == (1, 0)
        assert second.counters()[self.KIND]["disk_hits"] == 1

    def test_memory_only_kind_writes_nothing(self, tmp_path):
        register_kind("mem-test", disk=False)
        store = ArtifactStore(directory=str(tmp_path))
        store.put("mem-test", "a", 1)
        assert not os.path.exists(str(tmp_path / "mem-test"))

    def _entry_paths(self, tmp_path):
        root = tmp_path / self.KIND
        return sorted(root.iterdir()) if root.exists() else []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        for path in self._entry_paths(tmp_path):
            path.write_text("{not json")
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None
        assert store.stats(self.KIND).misses == 1
        assert store.counters()[self.KIND]["disk_misses"] == 1

    def test_stale_kind_version_is_a_miss(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        for path in self._entry_paths(tmp_path):
            data = json.loads(path.read_text())
            data["kind_version"] = 999
            path.write_text(json.dumps(data))
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # Guards against a (hypothetical) digest collision ever returning
        # another key's value.
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        for path in self._entry_paths(tmp_path):
            data = json.loads(path.read_text())
            data["key"] = "somebody-else"
            path.write_text(json.dumps(data))
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None

    def test_unserialisable_value_stays_memory_only(self, tmp_path):
        store = ArtifactStore(directory=str(tmp_path))
        value = object()
        store.put(self.KIND, "a", value)  # JSON TypeError swallowed
        assert store.get(self.KIND, "a") is value
        assert ArtifactStore(directory=str(tmp_path)).get(
            self.KIND, "a") is None

    def test_encode_decode_round_trip(self, tmp_path):
        register_kind(
            "codec-test", disk=True,
            encode=lambda v: list(v),
            decode=lambda v: tuple(v),
        )
        ArtifactStore(directory=str(tmp_path)).put("codec-test", "a", (1, 2))
        assert ArtifactStore(directory=str(tmp_path)).get(
            "codec-test", "a") == (1, 2)

    def test_broken_decode_is_a_miss(self, tmp_path):
        register_kind("strict-test", disk=True,
                      decode=lambda v: v["required-key"])
        register_kind("loose-test", disk=True)
        store = ArtifactStore(directory=str(tmp_path))
        store.put("strict-test", "a", {"other": 1})
        fresh = ArtifactStore(directory=str(tmp_path))
        assert fresh.get("strict-test", "a") is None


class TestDefaultStore:
    @pytest.fixture(autouse=True)
    def _restore(self):
        reset_default_store()
        yield
        reset_default_store()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        monkeypatch.delenv("REPRO_ARTIFACTS_DIR", raising=False)
        assert store_enabled()
        store = default_store()
        assert isinstance(store, ArtifactStore)
        assert store.directory is None
        assert default_store() is store  # one instance per process

    def test_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", "0")
        assert not store_enabled()
        assert default_store() is None

    def test_disk_directory_knob(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        monkeypatch.setenv("REPRO_ARTIFACTS_DIR", str(tmp_path))
        assert default_store().directory == str(tmp_path)

    def test_reset_rereads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS", raising=False)
        assert default_store() is not None
        monkeypatch.setenv("REPRO_ARTIFACTS", "off")
        reset_default_store()
        assert default_store() is None


class TestCacheStatsExport:
    def test_schedcache_reexports_artifact_stats(self):
        from repro.estimation import schedcache

        assert schedcache.CacheStats is CacheStats

    def test_repr(self):
        stats = CacheStats()
        stats.hits = 2
        assert "hits=2" in repr(stats)
        assert "kinds" in repr(ArtifactStore())


class TestCorruptionHardening:
    KIND = "corrupt-test"

    @pytest.fixture(autouse=True)
    def _kind(self):
        register_kind(self.KIND, version=1, disk=True)

    def _damage_entries(self, tmp_path, text="{not json"):
        for path in sorted((tmp_path / self.KIND).iterdir()):
            path.write_text(text)

    def test_corrupt_entry_is_counted(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        self._damage_entries(tmp_path)
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None
        assert store.stats(self.KIND).corrupt == 1
        assert store.corrupt_entries() == 1
        assert store.counters()[self.KIND]["corrupt"] == 1

    def test_plain_miss_is_not_corrupt(self, tmp_path):
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "never-stored") is None
        assert store.stats(self.KIND).corrupt == 0
        assert store.counters()[self.KIND]["disk_misses"] == 1

    def test_envelope_damage_counts_as_corrupt(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        self._damage_entries(tmp_path, json.dumps(["not", "an", "object"]))
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None
        assert store.stats(self.KIND).corrupt == 1

    def test_stale_version_counted_distinctly_from_corrupt(self, tmp_path):
        """A planned schema bump (kind version or store format) degrades
        to a silent miss under the ``stale`` counter — never ``corrupt``,
        never a warning, never the serve layer's corrupt-entry totals."""
        writer = ArtifactStore(directory=str(tmp_path))
        writer.put(self.KIND, "a", 1)
        writer.put(self.KIND, "b", 2)
        entries = sorted((tmp_path / self.KIND).iterdir())
        old_version = json.loads(entries[0].read_text())
        old_version["kind_version"] = 0
        entries[0].write_text(json.dumps(old_version))
        old_format = json.loads(entries[1].read_text())
        old_format["format"] = -1
        entries[1].write_text(json.dumps(old_format))
        store = ArtifactStore(directory=str(tmp_path))
        assert store.get(self.KIND, "a") is None
        assert store.get(self.KIND, "b") is None
        stats = store.stats(self.KIND)
        assert stats.stale == 2
        assert stats.corrupt == 0
        assert store.corrupt_entries() == 0
        assert store.counters()[self.KIND]["stale"] == 2
        delta = stats.delta(stats.snapshot())
        assert delta["stale"] == 0 and delta["corrupt"] == 0

    def test_warning_logged_once_per_entry(self, tmp_path, caplog):
        import logging

        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        self._damage_entries(tmp_path)
        store = ArtifactStore(directory=str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.artifacts"):
            store.get(self.KIND, "a")
            store.get(self.KIND, "a")
        warnings = [r for r in caplog.records
                    if "corrupt" in r.getMessage()]
        assert len(warnings) == 1
        assert "artifacts verify" in warnings[0].getMessage()
        # The counter still counts every encounter.
        assert store.stats(self.KIND).corrupt == 2

    def test_corrupt_resets_with_stats(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(self.KIND, "a", 1)
        self._damage_entries(tmp_path)
        store = ArtifactStore(directory=str(tmp_path))
        store.get(self.KIND, "a")
        store.clear(self.KIND)
        assert store.stats(self.KIND).corrupt == 0


class TestVerifyStore:
    KIND = "verify-test"

    @pytest.fixture(autouse=True)
    def _kind(self):
        register_kind(self.KIND, version=1, disk=True)

    def _populate(self, tmp_path, n=3):
        store = ArtifactStore(directory=str(tmp_path))
        for i in range(n):
            store.put(self.KIND, "key-%d" % i, {"i": i})
        return sorted((tmp_path / self.KIND).iterdir())

    def test_clean_store_scans_clean(self, tmp_path):
        self._populate(tmp_path)
        report = artifacts.verify_store(str(tmp_path))
        assert (report.scanned, report.ok) == (3, 3)
        assert report.bad == [] and report.quarantined == []

    def test_corrupt_entry_quarantined(self, tmp_path):
        paths = self._populate(tmp_path)
        paths[0].write_text("{broken")
        report = artifacts.verify_store(str(tmp_path))
        assert report.scanned == 3 and report.ok == 2
        assert len(report.bad) == 1
        rel, reason = report.bad[0]
        assert rel.startswith(self.KIND) and "JSON" in reason
        assert report.quarantined == [rel]
        # Moved, not deleted: preserved for post-mortems...
        assert not paths[0].exists()
        quarantined = tmp_path / artifacts.QUARANTINE_DIR / rel
        assert quarantined.exists()
        # ...and the next scan no longer sees it.
        second = artifacts.verify_store(str(tmp_path))
        assert (second.scanned, second.ok) == (2, 2)

    def test_quarantine_false_reports_only(self, tmp_path):
        paths = self._populate(tmp_path)
        paths[0].write_text("{broken")
        report = artifacts.verify_store(str(tmp_path), quarantine=False)
        assert len(report.bad) == 1
        assert report.quarantined == []
        assert paths[0].exists()

    def test_filename_key_mismatch_detected(self, tmp_path):
        paths = self._populate(tmp_path, n=1)
        data = json.loads(paths[0].read_text())
        data["key"] = "a-different-key"
        data_path = paths[0].parent / paths[0].name
        data_path.write_text(json.dumps(data))
        report = artifacts.verify_store(str(tmp_path))
        assert len(report.bad) == 1
        assert "digest" in report.bad[0][1] or "key" in report.bad[0][1]

    def test_unregistered_kind_skipped_not_flagged(self, tmp_path):
        self._populate(tmp_path, n=1)
        alien = tmp_path / "alien-kind"
        alien.mkdir()
        (alien / "deadbeef.json").write_text("{}")
        report = artifacts.verify_store(str(tmp_path))
        assert report.unknown_kinds == ["alien-kind"]
        assert report.scanned == 1  # only the registered kind

    def test_missing_directory_is_empty_report(self, tmp_path):
        report = artifacts.verify_store(str(tmp_path / "nope"))
        assert report.scanned == 0 and report.bad == []

    def test_as_dict_shape(self, tmp_path):
        paths = self._populate(tmp_path, n=1)
        paths[0].write_text("{broken")
        data = artifacts.verify_store(str(tmp_path)).as_dict()
        assert data["scanned"] == 1
        assert data["bad"][0]["reason"]
        assert data["quarantined"] == data["bad"][0]["path"].split()


class TestArtifactsCli:
    @pytest.fixture(autouse=True)
    def _kind(self):
        register_kind("cli-verify-test", version=1, disk=True)

    def _run(self, argv):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(argv, out=out)
        return code, out.getvalue()

    def test_verify_clean_store_exits_zero(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(
            "cli-verify-test", "a", 1,
        )
        code, text = self._run(["artifacts", "verify", "--dir",
                                str(tmp_path)])
        assert code == 0
        assert "1 ok, 0 bad" in text

    def test_verify_bad_store_exits_partial(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(
            "cli-verify-test", "a", 1,
        )
        for path in (tmp_path / "cli-verify-test").iterdir():
            path.write_text("{broken")
        code, text = self._run(["artifacts", "verify", "--dir",
                                str(tmp_path)])
        assert code == 4
        assert "1 bad" in text
        assert "quarantined" in text

    def test_verify_no_quarantine_flag(self, tmp_path):
        ArtifactStore(directory=str(tmp_path)).put(
            "cli-verify-test", "a", 1,
        )
        for path in (tmp_path / "cli-verify-test").iterdir():
            path.write_text("{broken")
        code, text = self._run(["artifacts", "verify", "--dir",
                                str(tmp_path), "--no-quarantine"])
        assert code == 4
        assert "quarantined" not in text
        assert list((tmp_path / "cli-verify-test").iterdir())

    def test_verify_without_directory_is_an_input_error(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACTS_DIR", raising=False)
        code, text = self._run(["artifacts", "verify"])
        assert code == 2
        assert "error:" in text
