"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main

SOURCE = """
int twice(int x) { return x * 2; }
int main(int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += twice(i);
  return s;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "app.cmini"
    path.write_text(SOURCE)
    return str(path)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestEstimate:
    def test_estimate_default_pum(self, source_file):
        code, text = run_cli(["estimate", source_file])
        assert code == 0
        assert "MicroBlaze" in text
        assert "main:" in text and "twice:" in text

    def test_estimate_verbose_prints_cdfg(self, source_file):
        _, text = run_cli(["estimate", source_file, "-v"])
        assert "bb0" in text and "delay=" in text

    def test_estimate_custom_hw(self, source_file):
        code, text = run_cli(["estimate", source_file, "--pum", "dct-hw"])
        assert code == 0
        assert "DCT-HW" in text

    def test_estimate_from_json_pum(self, source_file, tmp_path):
        from repro.pum import microblaze, save_pum

        pum_path = tmp_path / "mb.json"
        save_pum(microblaze(2048, 2048), str(pum_path))
        code, text = run_cli(
            ["estimate", source_file, "--pum-json", str(pum_path)]
        )
        assert code == 0
        assert "MicroBlaze" in text

    def test_cache_options_change_estimates(self, source_file):
        _, small = run_cli(["estimate", source_file, "--icache", "0",
                            "--dcache", "0"])
        _, big = run_cli(["estimate", source_file, "--icache", "32768",
                          "--dcache", "16384"])
        def total(text):
            return sum(
                int(line.rsplit("=", 1)[1].split()[0])
                for line in text.splitlines() if "sum of static" in line
            )
        assert total(small) > total(big)


class TestCacheStats:
    def test_estimate_cache_stats(self, source_file):
        code, text = run_cli(["estimate", source_file, "--cache-stats"])
        assert code == 0
        assert "schedule cache:" in text
        assert "misses" in text and "entries" in text

    def test_estimate_cache_stats_disabled(self, source_file, monkeypatch):
        from repro.estimation import schedcache

        monkeypatch.setenv("REPRO_SCHED_CACHE", "0")
        schedcache.reset_default_cache()
        try:
            code, text = run_cli(["estimate", source_file, "--cache-stats"])
        finally:
            schedcache.reset_default_cache()
        assert code == 0
        assert "schedule cache: disabled" in text


class TestArtifactsStats:
    def test_stats_lists_kind_versions_and_stale_counts(self, tmp_path):
        """`artifacts stats` shows each kind's schema version and counts
        stale-version entries distinctly from corrupt ones."""
        import json

        from repro.artifacts import DISK_FORMAT_VERSION
        from repro.simtrace import TRACE_KIND  # registers sim-trace (v2)

        kind_dir = tmp_path / TRACE_KIND
        kind_dir.mkdir()

        def envelope(key, kind_version=2):
            return json.dumps({
                "format": DISK_FORMAT_VERSION, "kind": TRACE_KIND,
                "kind_version": kind_version, "key": key, "value": {},
            })

        (kind_dir / "ok.json").write_text(envelope("a"))
        (kind_dir / "old.json").write_text(envelope("b", kind_version=1))
        (kind_dir / "deadbeef.json").write_text("{not json")

        code, text = run_cli(["artifacts", "stats",
                              "--dir", str(tmp_path)])
        assert code == 0
        line = next(l for l in text.splitlines() if TRACE_KIND in l)
        assert "v2" in line
        assert "3 entries" in line
        assert "1 stale" in line
        assert "1 corrupt" in line


class TestExplore:
    def test_explore_small_sweep(self):
        code, text = run_cli([
            "explore", "--small", "--cache-config", "2048:2048",
        ])
        assert code == 0
        assert "Explored 4 design points" in text
        assert "workers=1" in text
        assert "Pareto front" in text
        assert "SW+4@2k/2k" in text

    def test_explore_parallel_workers(self):
        code, text = run_cli([
            "explore", "--small", "--workers", "2",
            "--cache-config", "2048:2048",
        ])
        assert code == 0
        assert "Explored 4 design points" in text

    def test_explore_bad_cache_config(self):
        with pytest.raises(SystemExit):
            run_cli(["explore", "--small", "--cache-config", "bogus"])

    def test_explore_platform_sweep_with_replay_report(self):
        from repro import artifacts

        artifacts.reset_default_store()
        try:
            code, text = run_cli([
                "explore", "--small", "--sweep", "platform",
                "--replay", "auto", "--report",
            ])
        finally:
            artifacts.reset_default_store()
        assert code == 0
        assert "Explored 18 design points" in text
        assert "Replay fast path (auto): 1 traces captured" in text
        assert "Sim-trace replay report:" in text
        for label in ("traces captured", "traces reused", "replayed exact",
                      "kernel simulations", "validated vs kernel",
                      "group fallbacks", "vectorized evaluations"):
            assert label in text

    def test_explore_replay_off_prints_no_replay_lines(self):
        code, text = run_cli([
            "explore", "--small", "--cache-config", "2048:2048",
        ])
        assert code == 0
        assert "Replay fast path" not in text

    @pytest.mark.parametrize("workers", ["1", "4"])
    def test_explore_report_prints_generation_stages(self, workers):
        code, text = run_cli([
            "explore", "--small", "--workers", workers,
            "--cache-config", "2048:2048", "--report",
        ])
        assert code == 0
        assert "Generation report (4 points" in text
        for stage in ("frontend", "annotate", "codegen", "total"):
            assert stage in text
        assert "hits" in text and "misses" in text and "hit rate" in text


class TestSearchCli:
    ARGS = [
        "search", "--small", "--icache", "4096,8192",
        "--dcache", "2048,4096", "--bus-widths", "1,2",
        "--bus-arbitrations", "1,4", "--cpu-mhz", "66,100,150,200",
        "--keep-top", "6", "--rung-fraction", "0.2",
    ]

    def test_search_staged_pipeline(self):
        code, text = run_cli(self.ARGS)
        assert code == 0
        assert "Search space: 64 points (6 axes)" in text
        for stage in ("static", "approx-rung", "exact"):
            assert stage in text
        assert "Evaluated 6 points with the exact tier" in text
        assert "Pareto front" in text

    def test_search_top_k_truncates_ranking(self):
        code, text = run_cli(self.ARGS + ["--top-k", "3"])
        assert code == 0
        assert "Top 3 of 6 ranked points:" in text
        assert "rank" in text

    def test_search_report_prints_stage_counters(self):
        code, text = run_cli(self.ARGS + ["--report"])
        assert code == 0
        assert "Search report:" in text
        assert "prune rate" in text
        assert "delay_groups" in text
        assert "tlm-delays" in text and "app-profile" in text

    def test_search_bad_shard_is_one_line_error(self):
        code, text = run_cli(self.ARGS + ["--shard", "4/4"])
        assert code == 2
        assert text.startswith("error:")
        assert len(text.strip().splitlines()) == 1

    def test_search_shard_and_merge_roundtrip(self, tmp_path):
        paths = []
        for shard in ("0/2", "1/2"):
            path = str(tmp_path / ("shard-%s.json" % shard.replace("/", "-")))
            paths.append(path)
            code, text = run_cli(self.ARGS + [
                "--shard", shard, "--checkpoint", path,
            ])
            assert code == 0
            assert "shard %s" % shard in text
        merged_path = str(tmp_path / "merged.json")
        code, text = run_cli(self.ARGS + [
            "--merge", paths[0], paths[1], "--checkpoint", merged_path,
        ])
        assert code == 0
        assert "Merged 2 shard checkpoints" in text
        assert "Merged checkpoint written to" in text
        assert "Pareto front" in text

    def test_explore_top_k_truncates_ranking(self):
        code, text = run_cli([
            "explore", "--small", "--cache-config", "2048:2048",
            "--top-k", "2",
        ])
        assert code == 0
        assert "Top 2 of 4 ranked points:" in text


class TestCalibrate:
    def test_calibrate_traced_fast_path(self):
        code, text = run_cli([
            "calibrate", "--small", "--frames", "1",
            "--cache-config", "0:0", "--cache-config", "2048:2048",
        ])
        assert code == 0
        assert "1 reference run, traced fast path" in text
        assert "MemoryModel" in text and "BranchModel" in text
        assert "2048" in text

    def test_calibrate_no_trace_replays_per_config(self):
        code, text = run_cli([
            "calibrate", "--small", "--frames", "1",
            "--cache-config", "0:0", "--cache-config", "2048:2048",
            "--no-trace-cache",
        ])
        assert code == 0
        assert "2 reference runs, per-config replay" in text

    def test_calibrate_invalid_geometry_is_one_line_error(self):
        code, text = run_cli([
            "calibrate", "--small", "--frames", "1",
            "--cache-config", "1000:512",
        ])
        assert code == 2
        assert text.startswith("error:")
        assert len(text.strip().splitlines()) == 1


class TestRun:
    def test_run_interpreter(self, source_file):
        code, text = run_cli(["run", source_file, "5"])
        assert code == 0
        assert "main(5) = 20" in text

    def test_run_timed_reports_cycles(self, source_file):
        # argparse quirk: entry arguments go before the option flags.
        code, text = run_cli(["run", source_file, "5", "--timed"])
        assert code == 0
        assert "main(5) = 20" in text
        assert "Estimated" in text and "cycles" in text

    def test_run_other_entry(self, source_file):
        code, text = run_cli(["run", source_file, "21", "--entry", "twice"])
        assert code == 0
        assert "twice(21) = 42" in text


class TestDisasm:
    def test_disasm_output(self, source_file):
        code, text = run_cli(["disasm", source_file, "3"])
        assert code == 0
        assert "main:" in text
        assert "jal" in text
        assert "halt" in text


class TestErrors:
    def test_missing_file_raises(self):
        with pytest.raises(FileNotFoundError):
            run_cli(["estimate", "/nonexistent/path.cmini"])

    def test_semantic_error_propagates(self, tmp_path):
        path = tmp_path / "bad.cmini"
        path.write_text("int main(void) { return nope; }")
        from repro.cfrontend.errors import SemanticError

        with pytest.raises(SemanticError):
            run_cli(["estimate", str(path)])

    def test_unknown_subcommand_exits(self):
        with pytest.raises(SystemExit):
            run_cli(["frobnicate"])


class TestResilienceFlags:
    @pytest.fixture()
    def design_file(self, tmp_path):
        from repro.pum import dct_hw, microblaze
        from repro.tlm import Design, save_design

        design = Design("cli-faults")
        design.add_pe("cpu", microblaze(2048, 2048))
        design.add_pe("hw0", dct_hw())
        design.add_bus("bus0")
        design.add_channel(1, "req", "bus0")
        design.add_channel(2, "rsp", "bus0")
        design.add_process("sw", """
        int buf[4];
        int main(void) {
          for (int i = 0; i < 4; i++) buf[i] = i;
          send(1, buf, 4);
          recv(2, buf, 4);
          return buf[0];
        }""", "main", "cpu")
        design.add_process("acc", """
        int d[4];
        void main(void) {
          recv(1, d, 4);
          for (int i = 0; i < 4; i++) d[i] = d[i] + 1;
          send(2, d, 4);
        }""", "main", "hw0")
        path = tmp_path / "design.json"
        save_design(design, str(path))
        return str(path)

    def _scenario_file(self, tmp_path, faults):
        import json

        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(
            {"version": 1, "name": "cli", "seed": 3, "faults": faults}
        ))
        return str(path)

    def test_simulate_with_faults_reports_counters(self, design_file,
                                                   tmp_path):
        scenario = self._scenario_file(tmp_path, [
            {"type": "delay", "channel": "req", "cycles": 20},
        ])
        code, text = run_cli(["simulate", design_file, "--faults", scenario])
        assert code == 0
        assert "faults: scenario 'cli'" in text
        assert "1 delayed" in text

    def test_missing_scenario_is_one_line_error(self, design_file):
        code, text = run_cli([
            "simulate", design_file, "--faults", "/nonexistent/scenario.json",
        ])
        assert code == 2
        assert text.startswith("error:")
        assert "Traceback" not in text

    def test_crash_fault_exits_with_simulation_error(self, design_file,
                                                     tmp_path):
        scenario = self._scenario_file(tmp_path, [
            {"type": "crash", "process": "sw", "at_cycle": 0},
        ])
        code, text = run_cli(["simulate", design_file, "--faults", scenario])
        assert code == 3
        assert "simulation aborted" in text

    def test_watchdog_horizon_aborts(self, design_file):
        code, text = run_cli(["simulate", design_file, "--max-cycles", "1"])
        assert code == 3
        assert "simulation aborted" in text

    def test_watchdog_flags_allow_clean_run(self, design_file):
        code, text = run_cli([
            "simulate", design_file,
            "--max-cycles", "1000000", "--max-stalled", "100000",
        ])
        assert code == 0
        assert "makespan" in text

    def test_simulate_gen_stats(self, design_file):
        code, text = run_cli(["simulate", design_file, "--gen-stats"])
        assert code == 0
        assert "generation stages" in text
        for stage in ("frontend", "annotate", "codegen", "total"):
            assert stage in text

    def test_bad_pum_json_is_one_line_error(self, source_file, tmp_path):
        bad = tmp_path / "bad-pum.json"
        bad.write_text("{not json")
        code, text = run_cli(
            ["estimate", source_file, "--pum-json", str(bad)]
        )
        assert code == 2
        assert text.startswith("error:")
        assert "invalid JSON" in text

    def test_explore_checkpoint_restores(self, tmp_path):
        ckpt = str(tmp_path / "sweep.json")
        args = ["explore", "--small", "--cache-config", "2048:2048",
                "--checkpoint", ckpt]
        code, _ = run_cli(args)
        assert code == 0
        code, text = run_cli(args)
        assert code == 0
        assert "restored from checkpoint" in text


class TestPum:
    def test_preset_dump(self):
        code, text = run_cli(["pum", "microblaze"])
        assert code == 0
        assert '"MicroBlaze"' in text

    def test_unknown_preset(self):
        code, text = run_cli(["pum", "pentium4"])
        assert code == 2
        assert "unknown" in text

    def test_json_round_trip_via_cli(self, tmp_path):
        from repro.pum import dct_hw, save_pum

        path = tmp_path / "hw.json"
        save_pum(dct_hw(), str(path))
        code, text = run_cli(["pum", str(path)])
        assert code == 0
        assert '"DCT-HW"' in text
