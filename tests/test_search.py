"""Tests for the staged design-space search engine."""

import pytest

from repro import artifacts
from repro.apps.mp3 import Mp3Params
from repro.explore import (
    CheckpointError, DesignPoint, ExplorationCheckpoint, explore,
)
from repro.pum import microblaze
from repro.search import (
    SearchError, SearchSpace, as_search_space, merge_checkpoints,
    merge_shard_results, mp3_product_space, parse_shard, search,
    static_scores,
)
from repro.tlm import Design

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _loop_design(n_iters, name):
    def build():
        design = Design(name)
        design.add_pe("cpu", microblaze(8192, 4096))
        design.add_process("p", """
        int main(void) {
          int s = 0;
          for (int i = 0; i < %d; i++) s += i * 3;
          return s;
        }""" % n_iters, "main", "cpu")
        return design

    return build


def _loop_points(iters=(400, 50, 150, 250, 90, 320)):
    return [
        DesignPoint("loop-%03d" % n, _loop_design(n, "loop-%03d" % n),
                    area=1)
        for n in iters
    ]


def _small_space(cpu_mhz=(66.0, 100.0, 150.0, 200.0)):
    return mp3_product_space(
        SMALL, variants=("SW+2",), n_frames=1, seed=7,
        icache_sizes=(4096, 8192), dcache_sizes=(2048, 4096),
        bus_widths=(1, 2), bus_arbitrations=(1, 4),
        cpu_mhz=cpu_mhz,
    )


@pytest.fixture()
def fresh_store():
    artifacts.reset_default_store()
    yield artifacts.default_store()
    artifacts.reset_default_store()


class TestSearchSpace:
    def test_product_enumeration(self):
        space = SearchSpace("toy", [("a", (1, 2, 3)), ("b", (10, 20))],
                            build=lambda meta: None)
        assert len(space) == 6
        assert space.meta(0) == {"a": 1, "b": 10}
        assert space.meta(5) == {"a": 3, "b": 20}
        names = [space.point_name(i) for i in range(6)]
        assert len(set(names)) == 6
        assert names[0] == "toy[a=1,b=10]"

    def test_axis_values_and_groups(self):
        space = SearchSpace(
            "toy", [("cfg", ("x", "y")), ("mhz", (50.0, 100.0))],
            build=lambda meta: None, freq_axes={"mhz": "cpu"},
        )
        assert space.axis_values("mhz", [0, 1, 2, 3]) == [
            50.0, 100.0, 50.0, 100.0,
        ]
        groups = {space.delay_group_key(i) for i in range(4)}
        assert groups == {("x",), ("y",)}

    def test_neighbors_step_one_axis(self):
        space = SearchSpace(
            "toy", [("a", (1, 2, 3)), ("b", (10, 20))],
            build=lambda meta: None,
        )
        # index 0 = (a=1, b=10): neighbors are (a=2, b=10) and (a=1, b=20)
        assert space.neighbors(0) == [1, 2]
        # index 3 = (a=2, b=20): (a=1,b=20), (a=3,b=20), (a=2,b=10)
        assert space.neighbors(3) == [1, 2, 5]

    def test_shards_partition_deterministically(self):
        space = _small_space()
        shards = [space.shard_indices(i, 3) for i in range(3)]
        combined = sorted(i for shard in shards for i in shard)
        assert combined == list(range(len(space)))
        assert shards == [space.shard_indices(i, 3) for i in range(3)]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(SearchError):
            SearchSpace("toy", [], build=lambda meta: None)
        with pytest.raises(SearchError):
            SearchSpace("toy", [("a", ())], build=lambda meta: None)
        with pytest.raises(SearchError):
            SearchSpace("toy", [("a", (1,))], build=lambda meta: None,
                        freq_axes={"missing": "cpu"})
        with pytest.raises(SearchError):
            _small_space().shard_indices(3, 3)

    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("4/4", "x/4", "2", "-1/4"):
            with pytest.raises(SearchError):
                parse_shard(bad)


class TestStaticScores:
    def test_ranking_matches_exhaustive(self, fresh_store):
        space = _small_space()
        scores, counters = static_scores(space, list(range(len(space))))
        assert counters["scored"] == len(space)
        assert counters["delay_groups"] == 4
        exhaustive = explore(space.points(), replay="auto")
        by_static = sorted(range(len(space)),
                           key=lambda i: (scores[i], i))
        by_exact = [r.index for r in exhaustive.ranked()]
        assert by_static == by_exact

    def test_scores_plain_point_lists(self, fresh_store):
        points = _loop_points()
        scores, counters = static_scores(
            as_search_space(points), list(range(len(points))),
        )
        assert counters["delay_groups"] == len(points)
        order = sorted(range(len(points)), key=lambda i: scores[i])
        exhaustive = explore(points)
        assert ([points[i].name for i in order]
                == [r.point.name for r in exhaustive.ranked()])


class TestSearch:
    def test_finds_exhaustive_optimum(self, fresh_store):
        space = _small_space()
        result = search(space, keep_top=8, rung_fraction=0.1)
        exhaustive = explore(space.points(), replay="auto")
        best, truth = result.best(), exhaustive.best()
        assert best.point.name == truth.point.name
        assert best.makespan_cycles == truth.makespan_cycles
        # Far fewer points reached a simulator than the space holds.
        assert result.report.simulated_points < len(space)
        assert len(result) < len(space)

    def test_seeded_spaces_contain_optimum(self, fresh_store):
        for seed in (7, 8, 9):
            space = mp3_product_space(
                SMALL, variants=("SW", "SW+2"), n_frames=1, seed=seed,
                icache_sizes=(4096, 8192), dcache_sizes=(4096,),
                bus_widths=(1, 4), bus_arbitrations=(2,),
                cpu_mhz=(80.0, 120.0),
            )
            result = search(space, keep_top=4, rung_fraction=0.25)
            exhaustive = explore(space.points(), replay="auto")
            assert (result.best().makespan_cycles
                    == exhaustive.best().makespan_cycles)

    def test_results_carry_space_indices(self, fresh_store):
        space = _small_space()
        result = search(space, keep_top=6, rung_fraction=0.1)
        for point_result in result.results:
            assert (space.point_name(point_result.index)
                    == point_result.point.name)

    def test_stage_selection(self, fresh_store):
        space = _small_space(cpu_mhz=(66.0, 200.0))
        no_static = search(space, stages="1", keep_top=4,
                           rung_fraction=0.2)
        names = [s.name for s in no_static.report.stages]
        assert names == ["approx-rung", "exact"]
        assert no_static.report.stage_named("approx-rung").entered == \
            len(space)
        exhaustive = search(space, stages="", keep_top=4)
        assert [s.name for s in exhaustive.report.stages] == ["exact"]
        assert len(exhaustive) == len(space)

    def test_report_shape(self, fresh_store):
        space = _small_space()
        result = search(space, keep_top=6, rung_fraction=0.1)
        report = result.report.as_dict()
        assert report["space_points"] == len(space)
        stage_names = [s["stage"] for s in report["stages"]]
        assert stage_names == ["static", "approx-rung", "exact"]
        static = report["stages"][0]
        assert static["entered"] == len(space)
        assert static["pruned"] > 0
        assert 0.0 < static["prune_rate"] < 1.0
        assert static["counters"]["delay_groups"] == 4
        assert "app-profile" in static["counters"]["artifacts"]
        exact = report["stages"][2]
        assert exact["counters"]["mode"] == "auto"

    def test_plain_point_lists(self, fresh_store):
        points = _loop_points()
        result = search(points, keep_top=2, rung_fraction=0.1, stages="0")
        exhaustive = explore(points)
        assert result.best().point.name == exhaustive.best().point.name
        assert (result.best().makespan_cycles
                == exhaustive.best().makespan_cycles)

    def test_refinement_recovers_pruned_neighbors(self, fresh_store):
        space = _small_space()
        base = search(space, keep_top=4, rung_fraction=0.05, stages="01")
        refined = search(space, keep_top=4, rung_fraction=0.05,
                         stages="012", budget=8)
        refine = refined.report.stage_named("refine")
        assert refine is not None
        assert refine.entered == 8
        assert 0 < refine.kept <= 8
        assert len(refined) == len(base) + refine.kept
        assert (refined.best().makespan_cycles
                <= base.best().makespan_cycles)

    def test_invalid_arguments(self, fresh_store):
        space = _small_space()
        with pytest.raises(SearchError):
            search(space, stages="03")
        with pytest.raises(SearchError):
            search(space, keep_top=0)
        with pytest.raises(SearchError):
            search(space, rung_fraction=0.0)


class TestSharding:
    def test_sharded_searches_cover_optimum(self, fresh_store, tmp_path):
        space = _small_space()
        paths = []
        for shard in range(2):
            path = str(tmp_path / ("shard%d.json" % shard))
            paths.append(path)
            search(space, keep_top=6, rung_fraction=0.1,
                   shard=(shard, 2), checkpoint=path)
        merged = merge_shard_results(space, paths)
        evaluated = [r for r in merged.results if r.ok]
        assert all(r.cached for r in evaluated)
        assert len(evaluated) >= 6
        exhaustive = explore(space.points(), replay="auto")
        assert (merged.best().makespan_cycles
                == exhaustive.best().makespan_cycles)

    def test_merge_unions_disjoint_and_overlapping(self, tmp_path):
        points = _loop_points()
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        explore(points[:4], checkpoint=a)    # 0..3
        explore(points[2:], checkpoint=b)    # 2..5 (overlap on 2, 3)
        merged = merge_shard_results(points, [a, b])
        assert len(merged) == len(points)
        assert all(r.ok and r.cached for r in merged.results)
        # Zero re-evaluations: a further explore over the union restores
        # every point from the merged checkpoint.
        out = str(tmp_path / "merged.json")
        merge_checkpoints([a, b], output=out)
        rerun = explore(points, checkpoint=out)
        assert all(r.cached for r in rerun.results)
        assert ([r.makespan_cycles for r in rerun.results]
                == [r.makespan_cycles for r in merged.results])

    def test_merge_flags_missing_points(self, tmp_path):
        points = _loop_points()
        a = str(tmp_path / "a.json")
        explore(points[:2], checkpoint=a)
        merged = merge_shard_results(points, [a])
        assert len([r for r in merged.results if r.ok]) == 2
        missing = [r for r in merged.results if not r.ok]
        assert len(missing) == len(points) - 2
        assert all("shard" in r.error for r in missing)

    def test_merge_rejects_disagreeing_shards(self, tmp_path):
        points = _loop_points()[:2]
        a = str(tmp_path / "a.json")
        b = str(tmp_path / "b.json")
        explore(points, checkpoint=a)
        forged = ExplorationCheckpoint(b)
        forged.record(points[0].name, 12345, {"p": 12345}, 0.0)
        with pytest.raises(CheckpointError, match="disagree"):
            merge_checkpoints([a, b])

    def test_merge_rejects_granularity_mismatch(self, tmp_path):
        points = _loop_points()[:2]
        a = str(tmp_path / "a.json")
        explore(points, checkpoint=a)
        with pytest.raises(CheckpointError):
            merge_checkpoints([a], granularity="statement")
