"""Unit tests for the timed Python code generator."""

import pytest

from repro.api import annotate_program, compile_cmini
from repro.codegen import CodegenError, ProcessContext, generate_program, generate_source
from repro.pum import microblaze


def build(source, timed=False):
    ir = compile_cmini(source)
    if timed:
        annotate_program(ir, microblaze())
    return generate_program(ir, timed=timed)


def call(source, func="main", *args, timed=False):
    generated = build(source, timed=timed)
    ctx = ProcessContext()
    result = generated.entry(func)(ctx, generated.fresh_globals(), *args)
    return result, ctx


class TestFunctionalCorrectness:
    def test_int_arithmetic(self):
        result, _ = call("int main(void) { return (7 * 3 - 1) / 4 % 3; }")
        assert result == 2

    def test_c_division(self):
        assert call("int main(void) { return -9 / 2; }")[0] == -4
        assert call("int main(void) { return -9 % 2; }")[0] == -1

    def test_overflow_wraps(self):
        result, _ = call(
            "int main(void) { int x = 2000000000; return x + x; }"
        )
        assert result == -294967296

    def test_shift_semantics(self):
        assert call("int main(void) { return -16 >> 2; }")[0] == -4
        assert call("int main(void) { return 1 << 33; }")[0] == 2

    def test_float_and_cast(self):
        result, _ = call("int main(void) { return (int)(2.5 * 4.0 - 0.5); }")
        assert result == 9

    def test_arrays_and_loops(self):
        result, _ = call("""
        int main(void) {
          int a[6];
          for (int i = 0; i < 6; i++) a[i] = i * i;
          int s = 0;
          for (int i = 0; i < 6; i++) s += a[i];
          return s;
        }""")
        assert result == 55

    def test_globals_shared_across_calls(self):
        generated = build("int g; int bump(void) { g += 3; return g; }")
        glob = generated.fresh_globals()
        ctx = ProcessContext()
        fn = generated.entry("bump")
        assert fn(ctx, glob) == 3
        assert fn(ctx, glob) == 6
        assert glob["g"] == 6

    def test_array_param_aliasing(self):
        result, _ = call("""
        void double_all(int a[], int n) {
          for (int i = 0; i < n; i++) a[i] *= 2;
        }
        int main(void) {
          int b[3] = {1, 2, 3};
          double_all(b, 3);
          return b[0] + b[1] + b[2];
        }""")
        assert result == 12

    def test_recursion(self):
        result, _ = call("""
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { return fib(12); }
        """)
        assert result == 144

    def test_local_array_initializer(self):
        result, _ = call("""
        int main(void) {
          int t[5] = {10, 20, 30};
          return t[0] + t[2] + t[4];
        }""")
        assert result == 40

    def test_void_function_returns_none(self):
        generated = build("void f(void) { }")
        assert generated.entry("f")(ProcessContext(), {}) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            call("int main(void) { int z = 0; return 5 / z; }")


class TestTimedGeneration:
    def test_timed_requires_annotation(self):
        ir = compile_cmini("int main(void) { return 1; }")
        with pytest.raises(CodegenError):
            generate_program(ir, timed=True)

    def test_wait_calls_present_in_timed_source(self):
        ir = compile_cmini("int main(void) { return 1; }")
        annotate_program(ir, microblaze())
        source = generate_source(ir, timed=True)
        assert "ctx.wait(" in source

    def test_untimed_source_has_no_waits(self):
        ir = compile_cmini("int main(void) { return 1; }")
        source = generate_source(ir, timed=False)
        assert "ctx.wait(" not in source

    def test_total_cycles_accumulate(self):
        _, ctx = call("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 10; i++) s += i;
          return s;
        }""", timed=True)
        assert ctx.total_cycles > 0
        assert ctx.pending_cycles == ctx.total_cycles  # never synced

    def test_cycles_scale_with_work(self):
        src = """
        int main(void) {
          int s = 0;
          for (int i = 0; i < %d; i++) s += i;
          return s;
        }"""
        _, ctx_small = call(src % 10, timed=True)
        _, ctx_big = call(src % 1000, timed=True)
        assert ctx_big.total_cycles > 50 * ctx_small.total_cycles

    def test_zero_delay_blocks_emit_no_wait(self):
        ir = compile_cmini("int main(void) { return 1; }")
        annotate_program(ir, microblaze())
        for func in ir.functions.values():
            for block in func.blocks:
                block.delay = 0
        source = generate_source(ir, timed=True)
        assert "ctx.wait(" not in source


class TestGeneratedShape:
    def test_single_block_function_has_no_dispatch(self):
        ir = compile_cmini("int f(int a) { return a + 1; }")
        source = generate_source(ir, timed=False)
        assert "while True" not in source

    def test_multi_block_uses_dispatch(self):
        ir = compile_cmini("int f(int a) { if (a) return 1; return 2; }")
        source = generate_source(ir, timed=False)
        assert "while True" in source
        assert "bb = " in source

    def test_source_compiles_standalone(self):
        ir = compile_cmini("float f(float x) { return x * 0.5; }")
        source = generate_source(ir, timed=False)
        namespace = {}
        exec(compile(source, "<test>", "exec"), namespace)
        assert "f_f" in namespace
