"""Property-based equivalence: generated Python vs the reference interpreter.

Random CMini programs are generated and executed on both backends; results
and global side effects must match exactly.  This is the contract the timed
TLM relies on: timing annotation must not change functional behaviour.
"""

from hypothesis import given, settings, strategies as st

from repro.api import annotate_program, compile_cmini
from repro.cdfg.interp import Interpreter
from repro.codegen import ProcessContext, generate_program
from repro.pum import microblaze


@st.composite
def programs(draw):
    """A random CMini program exercising loops, branches and arrays."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed_vals = draw(st.lists(
        st.integers(min_value=-50, max_value=50), min_size=4, max_size=4
    ))
    ops = draw(st.lists(
        st.sampled_from(["+", "-", "*", "&", "|", "^"]),
        min_size=3, max_size=3,
    ))
    use_float = draw(st.booleans())
    branch_mod = draw(st.integers(min_value=2, max_value=4))
    float_block = ""
    if use_float:
        float_block = """
          float fa = (float)s * 0.5;
          if (fa > 10.0) s += (int)(fa / 3.0);
        """
    return """
int acc;
int work(int a[], int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    if (i %% %(mod)d == 0) s = s %(op0)s a[i %% 4];
    else s = s %(op1)s (i + 1);
    acc = acc %(op2)s 1;
    %(float_block)s
  }
  return s;
}
int main(void) {
  int a[4] = {%(v0)d, %(v1)d, %(v2)d, %(v3)d};
  int r = work(a, %(n)d);
  return r + acc * 100;
}
""" % {
        "mod": branch_mod,
        "op0": ops[0], "op1": ops[1], "op2": ops[2],
        "v0": seed_vals[0], "v1": seed_vals[1],
        "v2": seed_vals[2], "v3": seed_vals[3],
        "n": n,
        "float_block": float_block,
    }


@given(programs())
@settings(max_examples=30, deadline=None)
def test_generated_matches_interpreter(source):
    ir = compile_cmini(source)
    interp = Interpreter(ir)
    expected = interp.call("main")

    generated = generate_program(ir, timed=False)
    glob = generated.fresh_globals()
    actual = generated.entry("main")(ProcessContext(), glob)

    assert actual == expected
    assert glob == interp.globals


@given(programs())
@settings(max_examples=15, deadline=None)
def test_timed_generation_preserves_semantics(source):
    ir = compile_cmini(source)
    expected = Interpreter(ir).call("main")

    annotate_program(ir, microblaze())
    generated = generate_program(ir, timed=True)
    ctx = ProcessContext()
    actual = generated.entry("main")(ctx, generated.fresh_globals())

    assert actual == expected
    assert ctx.total_cycles > 0
