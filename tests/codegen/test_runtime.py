"""Unit tests for the process-context runtime (delay batching, sc_wait)."""

import pytest

from repro.codegen.runtime import ProcessContext
from repro.simkernel import Kernel


class _RecordingComm:
    def __init__(self):
        self.events = []

    def send(self, sim_process, chan, values):
        self.events.append(("send", chan, list(values)))

    def recv(self, sim_process, chan, count):
        self.events.append(("recv", chan, count))
        return [0] * count


class TestStandaloneAccounting:
    def test_wait_accumulates(self):
        ctx = ProcessContext()
        ctx.wait(10)
        ctx.wait(5)
        assert ctx.total_cycles == 15
        assert ctx.pending_cycles == 15

    def test_sync_without_kernel_clears_pending(self):
        ctx = ProcessContext()
        ctx.wait(10)
        ctx.sync()
        assert ctx.pending_cycles == 0
        assert ctx.total_cycles == 10

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            ProcessContext(granularity="nonsense")

    def test_comm_without_binding_raises(self):
        ctx = ProcessContext()
        with pytest.raises(RuntimeError):
            ctx.send(1, [1, 2])
        with pytest.raises(RuntimeError):
            ctx.recv(1, 2)


class TestKernelIntegration:
    def _run(self, granularity):
        kernel = Kernel()
        comm = _RecordingComm()
        timeline = []
        ctx = ProcessContext(
            cycle_ns=10.0, comm=comm, granularity=granularity
        )

        def body(process):
            ctx.sim_process = process
            ctx.wait(7)
            timeline.append(("after-wait", kernel.now))
            ctx.send(1, [42])
            timeline.append(("after-send", kernel.now))
            ctx.wait(3)
            ctx.sync()
            timeline.append(("end", kernel.now))

        kernel.add_process("p", body)
        kernel.run()
        return timeline, comm, ctx

    def test_transaction_granularity_defers_time(self):
        timeline, comm, ctx = self._run("transaction")
        # Time does not advance at wait(); it advances at the transaction.
        assert timeline[0] == ("after-wait", 0.0)
        assert timeline[1] == ("after-send", 70.0)
        assert timeline[2] == ("end", 100.0)
        assert ctx.total_cycles == 10
        assert ctx.n_transactions == 1
        assert comm.events == [("send", 1, [42])]

    def test_block_granularity_advances_immediately(self):
        timeline, _, _ = self._run("block")
        assert timeline[0] == ("after-wait", 70.0)

    def test_total_cycles_identical_across_granularities(self):
        _, _, ctx_txn = self._run("transaction")
        _, _, ctx_blk = self._run("block")
        assert ctx_txn.total_cycles == ctx_blk.total_cycles
