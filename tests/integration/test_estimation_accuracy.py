"""Integration: calibrated timed-TLM estimates track the cycle-true board.

A scaled-down version of the paper's accuracy methodology (Tables 2/3):
calibrate the PUM's statistical models on a training input, estimate an
evaluation input, compare against the PCAM reference.  Thresholds here are
deliberately loose (the benchmarks report the precise numbers); the tests
guard the *shape*: single-configuration error bounded, error ordering and
monotonicity preserved.
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.calibration import calibrate_pum
from repro.cycle import run_pcam
from repro.iss import ISS
from repro.isa import compile_program
from repro.pum import microblaze
from repro.tlm import generate_tlm
from repro.tlm.generator import compile_process

PARAMS = Mp3Params(n_subbands=8, n_slots=8, n_phases=8, n_alias=4)
TRAIN_SEED = 99
EVAL_SEED = 7
CONFIGS = [(0, 0), (2048, 2048), (16384, 16384)]


@pytest.fixture(scope="module")
def calibration():
    def train_design(isize, dsize):
        design, _ = build_design(
            "SW", PARAMS, n_frames=1, seed=TRAIN_SEED,
            icache_size=isize, dcache_size=dsize,
        )
        return design

    return calibrate_pum(microblaze(), train_design, CONFIGS)


@pytest.fixture(scope="module")
def boards():
    results = {}
    for isize, dsize in CONFIGS:
        design, _ = build_design(
            "SW", PARAMS, n_frames=1, seed=EVAL_SEED,
            icache_size=isize, dcache_size=dsize,
        )
        results[(isize, dsize)] = run_pcam(design)
    return results


def timed_tlm_cycles(calibration, isize, dsize, variant="SW"):
    design, _ = build_design(
        variant, PARAMS, n_frames=1, seed=EVAL_SEED,
        icache_size=isize, dcache_size=dsize,
        memory_model=calibration.memory_model,
        branch_model=calibration.branch_model,
    )
    return generate_tlm(design, timed=True).run().makespan_cycles


class TestSWAccuracy:
    def test_error_within_twenty_percent(self, calibration, boards):
        for config in CONFIGS:
            estimate = timed_tlm_cycles(calibration, *config)
            board = boards[config].makespan_cycles
            assert abs(estimate - board) / board < 0.20, config

    def test_estimates_monotone_in_cache_size(self, calibration):
        values = [timed_tlm_cycles(calibration, *c) for c in CONFIGS]
        assert values[0] > values[1] >= values[2]

    def test_board_monotone_in_cache_size(self, boards):
        cycles = [boards[c].makespan_cycles for c in CONFIGS]
        assert cycles[0] > cycles[1] >= cycles[2]

    def test_tlm_beats_iss_on_average(self, calibration, boards):
        design, _ = build_design(
            "SW", PARAMS, n_frames=1, seed=EVAL_SEED
        )
        decl = design.processes["decoder"]
        image = compile_program(compile_process(decl), "main", ())
        tlm_errors = []
        iss_errors = []
        for config in CONFIGS:
            board = boards[config].makespan_cycles
            tlm = timed_tlm_cycles(calibration, *config)
            iss = ISS(image, config[0], config[1]).run().cycles
            tlm_errors.append(abs(tlm - board) / board)
            iss_errors.append(abs(iss - board) / board)
        assert sum(tlm_errors) < sum(iss_errors)


class TestHWDesignAccuracy:
    def test_sw4_estimate_tracks_board(self, calibration):
        config = (2048, 2048)
        design, _ = build_design(
            "SW+4", PARAMS, n_frames=1, seed=EVAL_SEED,
            icache_size=config[0], dcache_size=config[1],
        )
        board = run_pcam(design).makespan_cycles
        estimate = timed_tlm_cycles(calibration, *config, variant="SW+4")
        assert abs(estimate - board) / board < 0.20

    def test_offloading_reduces_board_cycles(self, boards):
        config = (2048, 2048)
        sw_cycles = boards[config].makespan_cycles
        design, _ = build_design(
            "SW+4", PARAMS, n_frames=1, seed=EVAL_SEED,
            icache_size=config[0], dcache_size=config[1],
        )
        sw4_cycles = run_pcam(design).makespan_cycles
        assert sw4_cycles < sw_cycles

    def test_estimation_predicts_the_win(self, calibration):
        """The TLM alone (no board run) must rank SW+4 faster than SW —
        the design-space-exploration use case of the paper."""
        config = (2048, 2048)
        sw = timed_tlm_cycles(calibration, *config, variant="SW")
        sw4 = timed_tlm_cycles(calibration, *config, variant="SW+4")
        assert sw4 < sw
