"""Integration: the MP3 decoder agrees bit-for-bit across all backends,
and the multi-PE co-simulation exposes consistent platform activity."""

import pytest

from repro.apps.mp3 import Mp3Params, build_design, compile_sw_image
from repro.cdfg.interp import Interpreter
from repro.cycle import run_pcam, run_to_halt
from repro.iss import ISS
from repro.tlm import generate_tlm

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


@pytest.fixture(scope="module")
def sw_parts():
    image, ir, frames = compile_sw_image(SMALL, n_frames=2, seed=11)
    reference = Interpreter(ir).call("main")
    return image, ir, frames, reference


class TestSwPath:
    def test_iss_matches_interpreter(self, sw_parts):
        image, _, _, reference = sw_parts
        assert ISS(image, 2048, 2048).run().return_value == reference

    def test_board_matches_interpreter(self, sw_parts):
        image, _, _, reference = sw_parts
        assert run_to_halt(image, 2048, 2048).return_value == reference

    def test_board_result_independent_of_caches(self, sw_parts):
        image, _, _, reference = sw_parts
        for config in ((0, 0), (16384, 16384)):
            import copy

            # fresh CPU per config (run_to_halt builds fresh memory itself)
            cpu = run_to_halt(image, *config)
            assert cpu.return_value == reference

    def test_pcam_single_pe_equals_board(self, sw_parts):
        from repro.apps.mp3 import MP3_STACK_WORDS

        image, _, _, reference = sw_parts
        design, _ = build_design(
            "SW", SMALL, n_frames=2, seed=11,
            icache_size=2048, dcache_size=2048,
        )
        # Same stack size -> same address layout -> identical cache
        # behaviour, so the PCAM must agree with the direct CPU run to the
        # cycle.
        board = run_pcam(design, stack_words=MP3_STACK_WORDS)
        # Match the design PUM's predictor (run_to_halt defaults to 2bit).
        direct = run_to_halt(
            image, 2048, 2048, branch_policy="static-not-taken"
        )
        assert board.pe("decoder").return_value == reference
        assert board.pe("decoder").cycles == direct.cycle


class TestMultiPePath:
    def test_pcam_variants_match_reference(self, sw_parts):
        _, _, _, reference = sw_parts
        for variant in ("SW+1", "SW+4"):
            design, _ = build_design(
                variant, SMALL, n_frames=2, seed=11,
                icache_size=2048, dcache_size=2048,
            )
            board = run_pcam(design)
            assert board.pe("decoder").return_value == reference, variant

    def test_bus_activity_accounted(self):
        design, _ = build_design(
            "SW+4", SMALL, n_frames=1, seed=11,
            icache_size=2048, dcache_size=2048,
        )
        board = run_pcam(design)
        stats = board.buses["sysbus"]
        gs = SMALL.granule_samples
        # 4 units x request+response x granules x frames, gs words each.
        expected_words = 4 * 2 * SMALL.n_granules * 1 * gs
        assert stats["words"] == expected_words
        assert stats["transactions"] == 4 * 2 * SMALL.n_granules

    def test_offload_reduces_cpu_cycles_on_board(self):
        def cpu_cycles(variant):
            design, _ = build_design(
                variant, SMALL, n_frames=1, seed=11,
                icache_size=2048, dcache_size=2048,
            )
            return run_pcam(design).pe("decoder").cycles

        assert cpu_cycles("SW+4") < cpu_cycles("SW")

    def test_tlm_and_pcam_agree_on_transaction_counts(self):
        design, _ = build_design(
            "SW+2", SMALL, n_frames=1, seed=11,
            icache_size=2048, dcache_size=2048,
        )
        tlm = generate_tlm(design, timed=True).run()
        board = run_pcam(design)
        tlm_words = 2 * 2 * SMALL.n_granules * SMALL.granule_samples
        assert board.buses["sysbus"]["words"] == tlm_words
        # Decoder performs 2 transactions (send+recv) per offloaded unit per
        # granule.
        assert tlm.process("decoder").transactions == 2 * 2 * SMALL.n_granules
