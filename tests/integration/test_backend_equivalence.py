"""Integration: all four execution backends agree bit-for-bit.

The backends — reference interpreter, generated (timed) Python, interpreted
ISS and the cycle-accurate CPU — share CMini's semantics contract
(:mod:`repro.cdfg.cnum`).  Any divergence invalidates the whole estimation
methodology, so this is the repo's most important test.
"""

import pytest

from repro.api import annotate_program, compile_cmini
from repro.cdfg.interp import Interpreter
from repro.codegen import ProcessContext, generate_program
from repro.cycle import run_to_halt
from repro.isa import compile_program
from repro.iss import ISS
from repro.pum import microblaze

PROGRAMS = {
    "int-arith": """
    int main(void) {
      int acc = 0;
      for (int i = -20; i < 20; i++) {
        acc = acc * 3 + i;
        acc = acc ^ (i << 2);
        if (i != 0) acc += 1000 / i + 1000 % i;
      }
      return acc;
    }""",
    "overflow-wrap": """
    int main(void) {
      int x = 1;
      for (int i = 0; i < 40; i++) x = x * 3 + 7;
      return x;
    }""",
    "float-mix": """
    float poly(float x) { return ((x * 0.5 + 1.0) * x - 2.0) * x + 0.125; }
    int main(void) {
      float s = 0.0;
      for (int i = 0; i < 50; i++) s += poly((float)i * 0.25);
      return (int)s;
    }""",
    "arrays": """
    int hist[16];
    int main(void) {
      int data[32];
      for (int i = 0; i < 32; i++) data[i] = (i * 2654435761) >> 8;
      for (int i = 0; i < 32; i++) hist[data[i] & 15]++;
      int best = 0;
      for (int i = 1; i < 16; i++) if (hist[i] > hist[best]) best = i;
      return best * 100 + hist[best];
    }""",
    "recursion": """
    int ack_ish(int m, int n) {
      if (m == 0) return n + 1;
      if (n == 0) return ack_ish(m - 1, 1);
      return ack_ish(m - 1, ack_ish(m, n - 1));
    }
    int main(void) { return ack_ish(2, 3); }
    """,
    "branchy": """
    int classify(int v) {
      if (v < -10) return 0;
      if (v < 0) return 1;
      if (v == 0) return 2;
      if (v < 10) return 3;
      return 4;
    }
    int main(void) {
      int counts[5];
      for (int i = 0; i < 5; i++) counts[i] = 0;
      for (int v = -30; v <= 30; v += 1) counts[classify(v)]++;
      int code = 0;
      for (int i = 0; i < 5; i++) code = code * 100 + counts[i];
      return code;
    }""",
    "short-circuit": """
    int calls;
    int probe(int v) { calls++; return v; }
    int main(void) {
      int hits = 0;
      for (int i = 0; i < 16; i++) {
        if (i % 2 == 0 && probe(i) > 4) hits++;
        if (i % 3 == 0 || probe(-i) < -8) hits += 10;
      }
      return hits * 1000 + calls;
    }""",
    "cross-block-temps": """
    int f(int x) { return x * 2 + 1; }
    int main(void) {
      int s = 1;
      for (int i = 0; i < 10; i++) {
        s += f(i) > 7 ? i * s : -(i + s);
        s = (s & 0xFFFF) + (s < 0 ? 3 : 1);
      }
      return s;
    }""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_four_backends_agree(name):
    source = PROGRAMS[name]
    ir = compile_cmini(source)
    expected = Interpreter(ir).call("main")

    # Generated timed Python.
    annotate_program(ir, microblaze())
    generated = generate_program(ir, timed=True)
    ctx = ProcessContext()
    assert generated.entry("main")(ctx, generated.fresh_globals()) == expected

    # ISS and cycle-accurate CPU.
    image = compile_program(compile_cmini(source), "main", ())
    assert ISS(image, 2048, 2048).run().return_value == expected
    assert run_to_halt(image, 2048, 2048).return_value == expected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_globals_agree_between_interp_and_board(name):
    source = PROGRAMS[name]
    ir = compile_cmini(source)
    interp = Interpreter(ir)
    interp.call("main")

    image = compile_program(compile_cmini(source), "main", ())
    cpu = run_to_halt(image, 2048, 2048)
    for gname, (ctype, _) in image.ir_program.globals.items():
        addr, size = image.global_layout[gname]
        from repro.cfrontend.ctypes_ import is_array

        if is_array(ctype):
            assert cpu.memory[addr : addr + size] == interp.globals[gname]
        else:
            assert cpu.memory[addr] == interp.globals[gname]
