"""Edge-case corpus: small awkward programs run through all backends.

Each case pins behaviour that once was (or easily could be) wrong: operator
corner cases, loop-control subtleties, deeply nested expressions, scoping
tricks.  Every program must produce identical results on the interpreter,
the generated Python and the compiled backends.
"""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import Interpreter
from repro.codegen import ProcessContext, generate_program
from repro.cycle import run_to_halt
from repro.isa import compile_program
from repro.iss import ISS

CASES = {
    "continue-in-do-while": ("""
    int main(void) {
      int i = 0;
      int hits = 0;
      do {
        i++;
        if (i % 3 == 0) continue;   // must jump to the condition
        hits++;
      } while (i < 10);
      return hits * 100 + i;
    }""", None),
    "break-in-nested-loops": ("""
    int main(void) {
      int found = -1;
      for (int i = 0; i < 10 && found < 0; i++) {
        for (int j = 0; j < 10; j++) {
          if (i * j == 12) { found = i * 100 + j; break; }
        }
      }
      return found;
    }""", 206),
    "int-min-edge": ("""
    int main(void) {
      int m = -2147483647 - 1;       // INT_MIN
      int a = m / -1;                // defined as wrapping here
      int b = m % -1;
      return (a == m) * 10 + (b == 0);
    }""", 11),
    "shift-by-variable": ("""
    int main(void) {
      int total = 0;
      for (int s = 0; s < 40; s++) {
        total += (1 << s) & 255;     // shift amounts mod 32
      }
      return total;
    }""", None),
    "negative-modulo-loop-index": ("""
    int main(void) {
      int acc = 0;
      for (int i = -7; i <= 7; i++) {
        acc = acc * 3 + i % 4;
      }
      return acc;
    }""", None),
    "deeply-nested-expression": ("""
    int main(void) {
      int a = 3;
      return ((((((a + 1) * 2 - 3) ^ 5) | 9) & 127) << 2) >> 1;
    }""", None),
    "ternary-chains": ("""
    int grade(int score) {
      return score > 90 ? 4 : score > 75 ? 3 : score > 60 ? 2 : score > 40 ? 1 : 0;
    }
    int main(void) {
      int sum = 0;
      for (int s = 0; s <= 100; s += 7) sum = sum * 5 + grade(s);
      return sum;
    }""", None),
    "float-comparison-boundaries": ("""
    int main(void) {
      float a = 0.1;
      float b = a + a + a;            // 0.30000000000000004 in doubles
      int exact = b == 0.3;           // must be false on every backend
      int close = b - 0.3 < 1e-9 && 0.3 - b < 1e-9;
      return exact * 10 + close;
    }""", 1),
    "shadowing-across-scopes": ("""
    int x = 100;
    int main(void) {
      int total = x;
      { int x = 10; total += x; }
      for (int x = 0; x < 3; x++) total += x;
      { { int x = 1; { int x = 2; total += x; } total += x; } }
      return total + x;
    }""", 100 + 10 + 3 + 2 + 1 + 100),
    "empty-bodies": ("""
    void nop(void) { }
    int main(void) {
      for (int i = 0; i < 3; i++) { }
      while (0) { }
      if (1) { } else { }
      nop();
      return 7;
    }""", 7),
    "unary-stacking": ("""
    int main(void) {
      int a = 5;
      return - -a + !!a + ~~a;
    }""", 5 + 1 + 5),
    "assign-as-expression-value": ("""
    int main(void) {
      int a;
      int b = (a = 4) * 3;
      int c = a += 2;
      return a * 100 + b * 10 + c;
    }""", 6 * 100 + 12 * 10 + 6),
    "hex-and-bit-tricks": ("""
    int main(void) {
      int v = 0x0F0F;
      v = (v | (v << 4)) & 0xFFFF;
      v = v ^ 0xAAAA;
      return v;
    }""", None),
    "recursive-mutual": ("""
    int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
    int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
    int main(void) { return is_even(10) * 10 + is_odd(7); }
    """, 11),
}


def _run_everywhere(source):
    ir = compile_cmini(source)
    reference = Interpreter(ir).call("main")
    generated = generate_program(ir, timed=False)
    gen_value = generated.entry("main")(
        ProcessContext(), generated.fresh_globals()
    )
    image = compile_program(compile_cmini(source), "main", ())
    iss_value = ISS(image, 2048, 2048).run().return_value
    cpu_value = run_to_halt(image, 2048, 2048).return_value
    assert reference == gen_value == iss_value == cpu_value
    return reference


@pytest.mark.parametrize("name", sorted(CASES))
def test_edge_case(name):
    source, expected = CASES[name]
    value = _run_everywhere(source)
    if expected is not None:
        assert value == expected, (name, value)
