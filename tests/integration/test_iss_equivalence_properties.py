"""Property-based equivalence of the compiled backends (ISS + cycle CPU)
against the reference interpreter on random CMini programs.

Complements :mod:`tests.codegen.test_equivalence` (interpreter vs generated
Python) — together the four backends are pinned pairwise through randomly
generated programs, not just the hand-written corpus.
"""

from hypothesis import given, settings, strategies as st

from repro.api import compile_cmini
from repro.cdfg.interp import Interpreter
from repro.cycle import run_to_halt
from repro.isa import compile_program
from repro.iss import ISS


@st.composite
def random_programs(draw):
    n_iters = draw(st.integers(min_value=1, max_value=20))
    consts = draw(st.lists(
        st.integers(min_value=-100, max_value=100), min_size=3, max_size=3
    ))
    int_ops = draw(st.lists(
        st.sampled_from(["+", "-", "*", "&", "|", "^", "<<", ">>"]),
        min_size=2, max_size=2,
    ))
    cmp_op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    use_call = draw(st.booleans())
    use_ternary = draw(st.booleans())
    shift_guard = draw(st.integers(min_value=1, max_value=7))

    helper = ""
    call_expr = "i * 2"
    if use_call:
        helper = """
        int helper(int v, int w) {
          if (v %s w) return v - w;
          return w - v + 1;
        }""" % cmp_op
        call_expr = "helper(i, acc & 31)"
    ternary_stmt = ""
    if use_ternary:
        ternary_stmt = "acc += acc > 1000 ? -7 : 3;"

    return """
    int acc;
    int table[8] = {%(c0)d, %(c1)d, %(c2)d, 4, -4, 9, 0, 1};
    %(helper)s
    int main(void) {
      for (int i = 0; i < %(n)d; i++) {
        acc = (acc %(op0)s table[i & 7]) %(op1)s (i %% %(guard)d + 1);
        acc += %(call)s;
        %(ternary)s
      }
      float f = (float)acc * 0.5;
      if (f < 0.0) f = -f;
      return acc + (int)f;
    }
    """ % {
        "c0": consts[0], "c1": consts[1], "c2": consts[2],
        "op0": int_ops[0], "op1": int_ops[1],
        "n": n_iters, "guard": shift_guard,
        "helper": helper,
        "call": call_expr,
        "ternary": ternary_stmt,
    }


@given(random_programs())
@settings(max_examples=25, deadline=None)
def test_iss_matches_interpreter(source):
    ir = compile_cmini(source)
    expected = Interpreter(ir).call("main")
    image = compile_program(ir, "main", ())
    assert ISS(image, 2048, 2048).run().return_value == expected


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_cycle_cpu_matches_interpreter(source):
    ir = compile_cmini(source)
    expected = Interpreter(ir).call("main")
    image = compile_program(ir, "main", ())
    cpu = run_to_halt(image, 2048, 2048)
    assert cpu.return_value == expected


@given(random_programs())
@settings(max_examples=10, deadline=None)
def test_iss_and_cpu_execute_identical_instruction_streams(source):
    ir = compile_cmini(source)
    image = compile_program(ir, "main", ())
    iss = ISS(image, 2048, 2048).run()
    cpu = run_to_halt(image, 2048, 2048)
    assert iss.n_instrs == cpu.n_instrs
    assert iss.return_value == cpu.return_value
