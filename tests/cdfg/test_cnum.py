"""Unit + property tests for the shared 32-bit C arithmetic semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.cdfg import cnum

int32 = st.integers(min_value=cnum.INT_MIN, max_value=cnum.INT_MAX)
nonzero32 = int32.filter(lambda v: v != 0)


class TestWrap32:
    def test_identity_in_range(self):
        assert cnum.wrap32(123) == 123
        assert cnum.wrap32(-123) == -123

    def test_boundaries(self):
        assert cnum.wrap32(cnum.INT_MAX) == cnum.INT_MAX
        assert cnum.wrap32(cnum.INT_MIN) == cnum.INT_MIN

    def test_overflow_wraps(self):
        assert cnum.wrap32(cnum.INT_MAX + 1) == cnum.INT_MIN
        assert cnum.wrap32(cnum.INT_MIN - 1) == cnum.INT_MAX

    @given(st.integers(min_value=-2**70, max_value=2**70))
    def test_always_in_range(self, value):
        wrapped = cnum.wrap32(value)
        assert cnum.INT_MIN <= wrapped <= cnum.INT_MAX

    @given(st.integers(min_value=-2**70, max_value=2**70))
    def test_idempotent(self, value):
        assert cnum.wrap32(cnum.wrap32(value)) == cnum.wrap32(value)

    @given(int32)
    def test_unsigned_reinterpretation_round_trips(self, value):
        assert cnum.wrap32(cnum.to_unsigned32(value)) == value


class TestDivision:
    def test_truncates_toward_zero(self):
        assert cnum.c_div(7, 2) == 3
        assert cnum.c_div(-7, 2) == -3
        assert cnum.c_div(7, -2) == -3
        assert cnum.c_div(-7, -2) == 3

    def test_remainder_sign_follows_dividend(self):
        assert cnum.c_rem(7, 2) == 1
        assert cnum.c_rem(-7, 2) == -1
        assert cnum.c_rem(7, -2) == 1
        assert cnum.c_rem(-7, -2) == -1

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            cnum.c_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            cnum.c_rem(1, 0)

    @given(int32, nonzero32)
    def test_div_rem_identity(self, a, b):
        q = cnum.c_div(a, b)
        r = cnum.c_rem(a, b)
        # Avoid the single overflow case INT_MIN / -1 in the identity check.
        if not (a == cnum.INT_MIN and b == -1):
            assert q * b + r == a
            assert abs(r) < abs(b)

    def test_int_min_div_minus_one_wraps(self):
        # C UB; this implementation defines it as wrapping.
        assert cnum.c_div(cnum.INT_MIN, -1) == cnum.INT_MIN


class TestShifts:
    def test_shift_amount_mod_32(self):
        assert cnum.c_shl(1, 32) == 1
        assert cnum.c_shl(1, 33) == 2
        assert cnum.c_shr(8, 35) == 1

    def test_arithmetic_right_shift(self):
        assert cnum.c_shr(-8, 1) == -4
        assert cnum.c_shr(-1, 31) == -1

    def test_left_shift_overflow_wraps(self):
        assert cnum.c_shl(1, 31) == cnum.INT_MIN

    @given(int32, st.integers(min_value=0, max_value=31))
    def test_shr_matches_floor_division_for_positive(self, a, s):
        if a >= 0:
            assert cnum.c_shr(a, s) == a >> s


class TestArithmetic:
    @given(int32, int32)
    def test_add_commutes(self, a, b):
        assert cnum.c_add(a, b) == cnum.c_add(b, a)

    @given(int32, int32)
    def test_sub_is_add_of_negation(self, a, b):
        assert cnum.c_sub(a, b) == cnum.c_add(a, cnum.c_neg(b))

    @given(int32)
    def test_not_is_minus_one_minus(self, a):
        assert cnum.c_not(a) == cnum.c_sub(-1, a)

    @given(int32, int32, int32)
    def test_mul_associates_mod_2_32(self, a, b, c):
        left = cnum.c_mul(cnum.c_mul(a, b), c)
        right = cnum.c_mul(a, cnum.c_mul(b, c))
        assert left == right


class TestConversions:
    def test_float_to_int_truncates_toward_zero(self):
        assert cnum.c_float_to_int(2.9) == 2
        assert cnum.c_float_to_int(-2.9) == -2

    def test_float_to_int_wraps(self):
        assert cnum.c_float_to_int(2.0**31) == cnum.INT_MIN

    @given(int32)
    def test_int_float_round_trip_small(self, value):
        # ints up to 2^31 are exactly representable in doubles
        assert cnum.c_float_to_int(cnum.c_int_to_float(value)) == value

    def test_as_bool(self):
        assert cnum.as_bool(1) and cnum.as_bool(-1) and cnum.as_bool(0.5)
        assert not cnum.as_bool(0) and not cnum.as_bool(0.0)
