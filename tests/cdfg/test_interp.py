"""Unit tests for the reference IR interpreter."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import (
    Interpreter,
    InterpreterError,
    QueueComm,
    run_function,
)


def run(source, func="main", *args, **kwargs):
    return run_function(compile_cmini(source), func, *args, **kwargs)


class TestArithmetic:
    def test_int_expression(self):
        assert run("int main(void) { return (3 + 4) * 2 - 5; }") == 9

    def test_c_division_semantics(self):
        assert run("int main(void) { return -7 / 2; }") == -3
        assert run("int main(void) { return -7 % 2; }") == -1

    def test_int_overflow_wraps(self):
        assert run(
            "int main(void) { int x = 2147483647; return x + 1; }"
        ) == -2147483648

    def test_float_arithmetic(self):
        assert run("float main(void) { return 0.5 * 8.0 + 1.0; }") == 5.0

    def test_mixed_promotion(self):
        assert run("float main(void) { return 3 / 2 + 0.5; }") == 1.5

    def test_cast_truncation(self):
        assert run("int main(void) { return (int)-2.75; }") == -2

    def test_shift_ops(self):
        assert run("int main(void) { return (1 << 10) >> 3; }") == 128

    def test_bitwise_ops(self):
        assert run("int main(void) { return (12 & 10) | (1 ^ 3); }") == 10

    def test_unary_ops(self):
        assert run("int main(void) { return ~5 + !0 + !7; }") == -5

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            run("int main(void) { int z = 0; return 1 / z; }")

    def test_comparison_chain(self):
        assert run("int main(void) { return (2 < 3) + (3 <= 3) + (4 > 5); }") == 2


class TestControlFlow:
    def test_if_else(self):
        src = "int main(int x) { if (x > 0) return 1; else return -1; }"
        assert run(src, "main", 5) == 1
        assert run(src, "main", -5) == -1

    def test_while_loop(self):
        assert run("""
        int main(void) {
          int i = 0; int s = 0;
          while (i < 10) { s += i; i++; }
          return s;
        }""") == 45

    def test_do_while_runs_once(self):
        assert run("""
        int main(void) {
          int n = 0;
          do { n++; } while (0);
          return n;
        }""") == 1

    def test_for_with_break_continue(self):
        assert run("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 100; i++) {
            if (i == 7) break;
            if (i % 2 == 1) continue;
            s += i;
          }
          return s;
        }""") == 12

    def test_short_circuit_and_skips_rhs(self):
        assert run("""
        int g;
        int bump(void) { g++; return 1; }
        int main(void) {
          int r = 0 && bump();
          return g * 10 + r;
        }""") == 0

    def test_short_circuit_or_skips_rhs(self):
        assert run("""
        int g;
        int bump(void) { g++; return 0; }
        int main(void) {
          int r = 1 || bump();
          return g * 10 + r;
        }""") == 1

    def test_ternary(self):
        assert run("int main(int x) { return x > 0 ? x : -x; }", "main", -9) == 9

    def test_nested_loops(self):
        assert run("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 4; i++)
            for (int j = 0; j < 4; j++)
              if (i != j) s++;
          return s;
        }""") == 12


class TestFunctionsAndData:
    def test_recursion(self):
        assert run("""
        int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
        int main(void) { return fact(6); }
        """) == 720

    def test_array_passed_by_reference(self):
        assert run("""
        void fill(int a[], int n) { for (int i = 0; i < n; i++) a[i] = i * i; }
        int main(void) {
          int b[5];
          fill(b, 5);
          return b[4] + b[3];
        }""") == 25

    def test_global_array_state(self):
        assert run("""
        int hist[4];
        void record(int v) { hist[v % 4]++; }
        int main(void) {
          for (int i = 0; i < 10; i++) record(i);
          return hist[0] * 1000 + hist[1] * 100 + hist[2] * 10 + hist[3];
        }""") == 3322

    def test_local_array_initializer(self):
        assert run("""
        int main(void) {
          float w[4] = {0.5, 1.5, 2.5};
          return (int)(w[0] + w[1] + w[2] + w[3]);
        }""") == 4

    def test_scalars_default_to_zero(self):
        assert run("int main(void) { int x; return x; }") == 0

    def test_out_of_bounds_read_raises(self):
        with pytest.raises(InterpreterError):
            run("int main(void) { int a[2]; int i = 5; return a[i]; }")

    def test_negative_index_raises(self):
        with pytest.raises(InterpreterError):
            run("int main(void) { int a[2]; int i = -1; return a[i]; }")

    def test_runaway_recursion_guarded(self):
        with pytest.raises(InterpreterError):
            run("int main(void) { return main(); }")

    def test_wrong_arity_call_from_host(self):
        ir = compile_cmini("int f(int a) { return a; }")
        with pytest.raises(InterpreterError):
            Interpreter(ir).call("f")


class TestInstrumentation:
    def test_block_counts_recorded(self):
        ir = compile_cmini("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 5; i++) s += i;
          return s;
        }""")
        interp = Interpreter(ir)
        interp.call("main")
        body_counts = [
            count for (_, _), count in interp.block_counts.items()
        ]
        assert 5 in body_counts  # the loop body ran 5 times

    def test_on_block_hook_fires(self):
        ir = compile_cmini("int main(void) { return 3; }")
        events = []
        interp = Interpreter(ir, on_block=lambda f, l: events.append((f, l)))
        interp.call("main")
        assert events == [("main", 0)]

    def test_reset_clears_state(self):
        ir = compile_cmini("int g; int main(void) { g++; return g; }")
        interp = Interpreter(ir)
        assert interp.call("main") == 1
        assert interp.call("main") == 2
        interp.reset()
        assert interp.call("main") == 1


class TestCommunication:
    def test_queue_comm_round_trip(self):
        ir = compile_cmini("""
        int buf[4];
        int main(void) {
          for (int i = 0; i < 4; i++) buf[i] = i + 1;
          send(1, buf, 4);
          recv(1, buf, 2);
          return buf[0] * 10 + buf[1];
        }""")
        comm = QueueComm()
        assert Interpreter(ir, comm=comm).call("main") == 12
        assert comm.queues[1] == [3, 4]

    def test_comm_without_handler_raises(self):
        with pytest.raises(InterpreterError):
            run("int b[2]; int main(void) { send(1, b, 2); return 0; }")

    def test_recv_underflow_raises(self):
        ir = compile_cmini("int b[2]; int main(void) { recv(1, b, 2); return 0; }")
        with pytest.raises(InterpreterError):
            Interpreter(ir, comm=QueueComm()).call("main")
