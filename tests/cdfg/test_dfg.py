"""Unit + property tests for per-block DFG extraction."""

from hypothesis import given, strategies as st

from repro.api import compile_cmini
from repro.cdfg.dfg import build_block_dfg, build_function_dfgs


def biggest_block(source, func="f"):
    ir_func = compile_cmini(source).function(func)
    return max(ir_func.blocks, key=lambda b: len(b.ops))


class TestDependencies:
    def test_true_dependency_through_temps(self):
        block = biggest_block("int f(int a) { return (a + 1) * 2; }")
        dfg = build_block_dfg(block)
        # The mul depends on the add; the ret depends on the mul.
        mul_idx = next(
            i for i, op in enumerate(block.ops)
            if op.opcode == "bin" and op.attrs["op"] == "*"
        )
        add_idx = next(
            i for i, op in enumerate(block.ops)
            if op.opcode == "bin" and op.attrs["op"] == "+"
        )
        assert add_idx in dfg.deps[mul_idx]

    def test_store_load_dependency_same_scalar(self):
        block = biggest_block("int f(int a) { int x; x = a; return x; }")
        dfg = build_block_dfg(block)
        store = next(i for i, op in enumerate(block.ops) if op.opcode == "st")
        load = next(
            i for i, op in enumerate(block.ops)
            if op.opcode == "ld" and op.attrs["var"] == "x"
        )
        assert store in dfg.deps[load]

    def test_array_store_orders_with_later_load(self):
        block = biggest_block("""
        int f(int a[]) { a[0] = 5; return a[1]; }
        """)
        dfg = build_block_dfg(block)
        stx = next(i for i, op in enumerate(block.ops) if op.opcode == "stx")
        ldx = max(i for i, op in enumerate(block.ops) if op.opcode == "ldx")
        assert stx in dfg.deps[ldx]  # no index disambiguation (conservative)

    def test_independent_loads_have_no_mutual_deps(self):
        block = biggest_block("int f(int a, int b) { return a + b; }")
        dfg = build_block_dfg(block)
        loads = [i for i, op in enumerate(block.ops) if op.opcode == "ld"]
        for i in loads:
            for j in loads:
                assert j not in dfg.deps[i]

    def test_call_is_barrier_for_memory(self):
        block = biggest_block("""
        int g;
        int side(void) { g++; return g; }
        int f(void) { g = 1; int x = side(); return g + x; }
        """)
        dfg = build_block_dfg(block)
        call = next(i for i, op in enumerate(block.ops) if op.opcode == "call")
        st_before = [
            i for i, op in enumerate(block.ops)
            if op.opcode == "st" and i < call and op.attrs["var"] == "g"
        ]
        ld_after = [
            i for i, op in enumerate(block.ops)
            if op.opcode == "ld" and i > call and op.attrs["var"] == "g"
        ]
        assert st_before and ld_after
        assert all(call in dfg.deps[i] for i in ld_after)
        assert any(s in dfg.deps[call] for s in st_before)


class TestDAGProperties:
    SOURCES = [
        "int f(int a) { return a * a + a; }",
        """
        float f(float v[], int n) {
          float s = 0.0;
          for (int i = 0; i < n; i++) s += v[i] * v[i];
          return s;
        }""",
        """
        int f(int n) {
          int a = n + 1; int b = a * 2; int c = b - n;
          return a + b + c;
        }""",
    ]

    def test_deps_point_backwards(self):
        for source in self.SOURCES:
            for func in compile_cmini(source).functions.values():
                for dfg in build_function_dfgs(func).values():
                    for i, deps in enumerate(dfg.deps):
                        assert all(j < i for j in deps)

    def test_succs_is_inverse_of_deps(self):
        for source in self.SOURCES:
            for func in compile_cmini(source).functions.values():
                for dfg in build_function_dfgs(func).values():
                    for i, deps in enumerate(dfg.deps):
                        for j in deps:
                            assert i in dfg.succs[j]

    def test_critical_path_bounds(self):
        source = self.SOURCES[1]
        func = compile_cmini(source).function("f")
        for dfg in build_function_dfgs(func).values():
            n = len(dfg)
            if n == 0:
                continue
            cp = dfg.critical_path_length(lambda op: 1)
            assert 1 <= cp <= n

    def test_depths_consistent_with_critical_path(self):
        func = compile_cmini(self.SOURCES[2]).function("f")
        for dfg in build_function_dfgs(func).values():
            if len(dfg) == 0:
                continue
            latency = lambda op: 1  # noqa: E731
            depths = dfg.all_depths(latency)
            assert max(depths) == dfg.critical_path_length(latency)
            for i in range(len(dfg)):
                assert depths[i] == dfg.depth(i, latency)


@given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=3))
def test_chain_critical_path_scales_with_length(chain_len, pad):
    """A chained expression produces a critical path that grows with the
    chain; padding with independent statements never shrinks it."""
    expr = "a"
    for _ in range(chain_len):
        expr = "(%s + 1)" % expr
    pad_stmts = "".join("int p%d = %d;" % (i, i) for i in range(pad))
    source = "int f(int a) { %s return %s; }" % (pad_stmts, expr)
    func = compile_cmini(source).function("f")
    dfg = build_block_dfg(func.blocks[0])
    cp = dfg.critical_path_length(lambda op: 1)
    # ld a -> chain of adds -> ret
    assert cp >= chain_len + 1
