"""Tests for the IR pretty-printer."""

from repro.api import annotate_program, compile_cmini
from repro.cdfg.printer import format_function, format_op, format_program
from repro.pum import microblaze

SRC = """
int g[4];
float h;
int f(int a, float w[]) {
  if (a > 0) {
    g[a & 3] = a;
    h = h + w[0];
    send(1, g, 4);
  }
  return helper(a);
}
int helper(int x) { return x ? -x : ~x; }
"""


class TestFormatting:
    def test_every_op_formats(self):
        program = compile_cmini(SRC)
        for func in program.functions.values():
            for block in func.blocks:
                for op in block.ops:
                    text = format_op(op)
                    assert isinstance(text, str) and text

    def test_function_dump_contains_blocks(self):
        func = compile_cmini(SRC).function("f")
        text = format_function(func)
        assert text.startswith("func f(a, w):")
        assert "bb0:" in text
        assert "send(" in text
        assert "call helper" in text

    def test_annotated_delays_shown(self):
        program = compile_cmini(SRC)
        annotate_program(program, microblaze())
        text = format_function(program.function("f"))
        assert "delay=" in text

    def test_program_dump_sorted(self):
        text = format_program(compile_cmini(SRC))
        assert text.index("func f") < text.index("func helper")

    def test_memory_ops_show_scope(self):
        func = compile_cmini(SRC).function("f")
        text = format_function(func)
        assert "g:g[" in text or "g:g " in text or "g:g =" in text  # global
        assert "l:a" in text  # local
