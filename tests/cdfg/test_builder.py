"""Unit tests for AST → IR lowering."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.ir import TERMINATORS


def function_ir(source, name="f"):
    return compile_cmini(source).function(name)


class TestCFGShape:
    def test_straightline_single_block(self):
        func = function_ir("int f(int a) { int b = a + 1; return b * 2; }")
        assert len(func.blocks) == 1

    def test_every_block_has_terminator(self):
        func = function_ir("""
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) {
            if (i % 2 == 0) s += i;
            else s -= i;
          }
          return s;
        }""")
        for block in func.blocks:
            assert block.terminator is not None
            assert block.terminator.opcode in TERMINATORS

    def test_terminator_is_last_op_only(self):
        func = function_ir("int f(int n) { while (n > 0) n--; return n; }")
        for block in func.blocks:
            for op in block.body:
                assert not op.is_terminator

    def test_if_produces_diamond(self):
        func = function_ir("int f(int a) { if (a) a = 1; else a = 2; return a; }")
        func.compute_edges()
        entry = func.blocks[0]
        assert len(entry.succs) == 2

    def test_unreachable_code_removed(self):
        func = function_ir("int f(void) { return 1; int x = 2; return x; }")
        assert len(func.blocks) == 1

    def test_edges_are_consistent(self):
        func = function_ir("""
        int f(int n) {
          int s = 0;
          while (n) { if (n & 1) s++; n >>= 1; }
          return s;
        }""")
        for block in func.blocks:
            for succ in block.succs:
                assert block.label in func.blocks[succ].preds

    def test_implicit_void_return(self):
        func = function_ir("void f(int a) { a = a + 1; }")
        assert func.blocks[-1].terminator.opcode == "ret"

    def test_implicit_value_return_returns_zero(self):
        func = function_ir("int f(int a) { a = a + 1; }")
        term = func.blocks[-1].terminator
        assert term.opcode == "ret"
        assert len(term.args) == 1


class TestTempDiscipline:
    def _all_blocks(self, source):
        program = compile_cmini(source)
        for func in program.functions.values():
            for block in func.blocks:
                yield func, block

    def test_temps_defined_before_use_within_block(self):
        source = """
        int g(int a) { return a * 3; }
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) s += g(i) > 2 ? i : -i;
          return s && n || s > 1;
        }"""
        for func, block in self._all_blocks(source):
            defined = set()
            for op in block.ops:
                for arg in op.args:
                    assert arg in defined, (
                        "t%d used before def in %s bb%d"
                        % (arg, func.name, block.label)
                    )
                if op.dst is not None:
                    defined.add(op.dst)

    def test_temps_never_cross_blocks(self):
        source = """
        int f(int n) {
          int s = 0;
          while (n > 0) { s += n; n = n - (s > 10 ? 2 : 1); }
          return s;
        }"""
        seen_in = {}
        for func, block in self._all_blocks(source):
            for op in block.ops:
                temps = set(op.args)
                if op.dst is not None:
                    temps.add(op.dst)
                for temp in temps:
                    owner = seen_in.setdefault((func.name, temp), block.label)
                    assert owner == block.label


class TestLoweringSemantics:
    def test_compound_assignment_expands(self):
        func = function_ir("void f(int a[]) { a[2] += 5; }")
        opcodes = [op.opcode for op in func.blocks[0].ops]
        assert "ldx" in opcodes and "stx" in opcodes and "bin" in opcodes

    def test_short_circuit_creates_blocks(self):
        func = function_ir("int f(int a, int b) { return a && b; }")
        assert len(func.blocks) >= 3

    def test_ternary_creates_blocks(self):
        func = function_ir("int f(int a) { return a ? 1 : 2; }")
        assert len(func.blocks) >= 4

    def test_local_shadowing_renames(self):
        func = function_ir("""
        int f(int x) {
          int y = x;
          { int y__inner = 0; }
          for (int i = 0; i < 2; i++) { int y2 = i; y += y2; }
          { int y = 99; x = y; }
          return y + x;
        }""")
        # Two distinct storage slots for the two `y` declarations (the
        # renamed inner one gets a numeric suffix; `y__inner` is the user's).
        y_names = [
            n for n in func.locals
            if n == "y" or (n.startswith("y__") and n[3:].isdigit())
        ]
        assert len(y_names) == 2

    def test_call_arg_spec_shapes(self):
        program = compile_cmini("""
        int g(int s, float v[]) { return s + (int)v[0]; }
        float buf[4];
        int f(int k) { return g(k * 2, buf); }
        """)
        func = program.function("f")
        call = next(
            op for b in func.blocks for op in b.ops if op.opcode == "call"
        )
        spec = call.attrs["arg_spec"]
        assert spec[0][0] == "temp"
        assert spec[1] == ("array", "buf", "global")

    def test_comm_lowering(self):
        func = function_ir("int b[4]; void f(void) { send(3, b, 4); }")
        comm = next(
            op for blk in func.blocks for op in blk.ops if op.opcode == "comm"
        )
        assert comm.attrs["kind"] == "send"
        assert comm.attrs["var"] == "b"

    def test_break_targets_loop_exit(self):
        func = function_ir("""
        int f(int n) {
          int i = 0;
          while (1) { if (i >= n) break; i++; }
          return i;
        }""")
        func.compute_edges()
        # The exit block (containing ret) must be reachable.
        ret_blocks = [
            b for b in func.blocks
            if b.terminator is not None and b.terminator.opcode == "ret"
        ]
        assert ret_blocks

    def test_opclass_assignment(self):
        func = function_ir("""
        float f(float a[], int i) {
          float x = a[i] * 2.0;
          int y = i / 3;
          return x + (float)y;
        }""")
        classes = {op.opclass for b in func.blocks for op in b.ops}
        assert {"load", "fmul", "div", "move", "branch"} <= classes


class TestProgramLevel:
    def test_globals_materialized(self):
        program = compile_cmini("const int N = 2; float a[N] = {1.0, 2.0}; int b = 7;")
        assert program.globals["a"][1] == [1.0, 2.0]
        assert program.globals["b"][1] == 7

    def test_op_counts_positive(self):
        program = compile_cmini("int f(void) { return 1; }")
        assert program.n_ops >= 2
        assert program.n_blocks == 1

    def test_function_lookup(self):
        program = compile_cmini("int f(void) { return 1; }")
        assert program.function("f").name == "f"
        with pytest.raises(KeyError):
            program.function("missing")
