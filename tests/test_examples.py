"""Smoke tests: every example script runs to completion.

Examples are imported and their ``main()`` executed in-process with stdout
captured, so failures show real tracebacks.  The JPEG example is exercised
with reduced size elsewhere (tests/apps/test_jpeg.py) since its PCAM runs
are the slowest part of the suite.
"""

import contextlib
import importlib.util
import io
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart",
    "custom_hw_pum",
    "processor_whatif",
    "rtos_shared_cpu",
    "mp3_design_space",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name + ".py")
    spec = importlib.util.spec_from_file_location("example_" + name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    module = load_example(name)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert len(output) > 50  # produced a real report


def test_quickstart_reports_cycles():
    module = load_example("quickstart")
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        module.main()
    assert "cycles" in buffer.getvalue()


def test_design_space_finds_a_winner():
    module = load_example("mp3_design_space")
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        module.main()
    assert "Cheapest design meeting" in buffer.getvalue()


def test_all_examples_have_docstring_and_main():
    for filename in os.listdir(EXAMPLES_DIR):
        if not filename.endswith(".py"):
            continue
        path = os.path.join(EXAMPLES_DIR, filename)
        with open(path) as handle:
            source = handle.read()
        assert source.lstrip().startswith('"""'), filename
        # main() must exist and be callable without arguments (parameters,
        # if any, need defaults — the example tests invoke module.main()).
        assert "def main(" in source, filename
        assert '__name__ == "__main__"' in source, filename
