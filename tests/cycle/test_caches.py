"""Unit + property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cycle.caches import Cache, CacheError, NullCache, make_cache


class TestGeometry:
    def test_sets_computed_from_size(self):
        cache = Cache(2048, line_words=8, assoc=2)
        # 2048 B / (8 words * 4 B * 2 ways) = 32 sets
        assert cache.n_sets == 32

    def test_invalid_sizes_rejected(self):
        with pytest.raises(CacheError):
            Cache(0)
        with pytest.raises(CacheError):
            Cache(100, line_words=8, assoc=2)  # not a multiple

    def test_make_cache_dispatches(self):
        assert isinstance(make_cache(0), NullCache)
        assert isinstance(make_cache(2048), Cache)


class TestBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = make_cache(2048)
        assert cache.access(100) is False
        assert cache.access(100) is True

    def test_spatial_locality_within_line(self):
        cache = make_cache(2048, line_words=8)
        cache.access(64)
        for offset in range(1, 8):
            assert cache.access(64 + offset) is True

    def test_line_boundary_misses(self):
        cache = make_cache(2048, line_words=8)
        cache.access(64)
        assert cache.access(72) is False

    def test_lru_eviction_order(self):
        # 2-way: fill a set with 2 lines, touch the first, insert a third;
        # the second (least recent) must be evicted.
        cache = Cache(2048, line_words=8, assoc=2)
        stride = cache.n_sets * 8  # same set, different tags
        a, b, c = 0, stride, 2 * stride
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a is now MRU
        cache.access(c)  # evicts b
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_flush_invalidates(self):
        cache = make_cache(2048)
        cache.access(5)
        cache.flush()
        assert cache.access(5) is False

    def test_working_set_larger_than_cache_thrashes(self):
        cache = Cache(1024, line_words=8, assoc=2)  # 256 words
        for _ in range(3):
            for addr in range(0, 4096, 8):
                cache.access(addr)
        assert cache.hit_rate < 0.05

    def test_working_set_smaller_than_cache_hits(self):
        cache = Cache(4096, line_words=8, assoc=2)  # 1024 words
        for _ in range(10):
            for addr in range(0, 512, 4):
                cache.access(addr)
        assert cache.hit_rate > 0.9


class TestNullCache:
    def test_always_misses(self):
        cache = NullCache()
        for addr in (0, 0, 1, 1):
            assert cache.access(addr) is False
        assert cache.hit_rate == 0.0
        assert cache.accesses == 4

    def test_reset(self):
        cache = NullCache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0


class TestStatsInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300),
           st.sampled_from([1024, 2048, 8192]),
           st.sampled_from([1, 2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs, size, assoc):
        cache = Cache(size, line_words=8, assoc=assoc)
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addrs)
        assert 0.0 <= cache.hit_rate <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=2_000), min_size=1,
                    max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_each_set_never_exceeds_associativity(self, addrs):
        cache = Cache(1024, line_words=4, assoc=2)
        for addr in addrs:
            cache.access(addr)
        for ways in cache._sets:
            assert len(ways) <= cache.assoc

    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                    max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_repeating_trace_twice_only_improves_hit_rate(self, addrs):
        once = Cache(2048, line_words=8, assoc=2)
        for addr in addrs:
            once.access(addr)
        twice = Cache(2048, line_words=8, assoc=2)
        for addr in addrs + addrs:
            twice.access(addr)
        assert twice.hits >= once.hits
