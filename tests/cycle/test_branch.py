"""Unit tests for the branch predictors."""

import pytest

from repro.cycle.branch import (
    PREDICTORS,
    StaticBTFN,
    StaticNotTaken,
    TwoBit,
    make_predictor,
)


class TestStaticNotTaken:
    def test_correct_on_not_taken(self):
        p = StaticNotTaken()
        assert p.predict_and_update(10, 20, taken=False)
        assert p.miss_rate == 0.0

    def test_wrong_on_taken(self):
        p = StaticNotTaken()
        assert not p.predict_and_update(10, 20, taken=True)
        assert p.miss_rate == 1.0


class TestStaticBTFN:
    def test_backward_predicted_taken(self):
        p = StaticBTFN()
        assert p.predict_and_update(100, 50, taken=True)   # backward, taken
        assert p.predict_and_update(100, 150, taken=False)  # forward, not
        assert p.miss_rate == 0.0

    def test_mispredicts_forward_taken(self):
        p = StaticBTFN()
        assert not p.predict_and_update(100, 150, taken=True)


class TestTwoBit:
    def test_learns_always_taken(self):
        p = TwoBit()
        for _ in range(3):
            p.predict_and_update(8, 2, taken=True)
        # After warm-up, the counter saturates and predicts taken.
        assert p.predict_and_update(8, 2, taken=True)

    def test_hysteresis_tolerates_single_flip(self):
        p = TwoBit()
        for _ in range(4):
            p.predict_and_update(8, 2, taken=True)
        p.predict_and_update(8, 2, taken=False)  # one not-taken
        assert p.predict_and_update(8, 2, taken=True)  # still predicts taken

    def test_independent_slots(self):
        p = TwoBit(table_size=4)
        for _ in range(4):
            p.predict_and_update(0, 2, taken=True)
            p.predict_and_update(1, 2, taken=False)
        assert p.predict_and_update(0, 2, taken=True)
        assert p.predict_and_update(1, 2, taken=False)

    def test_loop_branch_miss_rate_low(self):
        # A loop branch taken 99 times then not taken once.
        p = TwoBit()
        for i in range(100):
            p.predict_and_update(4, 0, taken=(i != 99))
        assert p.miss_rate < 0.05

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            TwoBit(table_size=0)


class TestFactory:
    def test_all_registered_policies_constructible(self):
        for name in PREDICTORS:
            predictor = make_predictor(name)
            predictor.predict_and_update(0, 1, taken=True)
            assert predictor.predictions == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_predictor("oracle")

    def test_stats_reset(self):
        p = make_predictor("2bit")
        p.predict_and_update(0, 1, True)
        p.reset_stats()
        assert p.predictions == 0
        assert p.mispredictions == 0
