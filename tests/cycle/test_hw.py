"""Unit tests for the clock-stepped custom-HW datapath model."""

from repro.api import compile_cmini
from repro.cdfg.interp import run_function
from repro.cycle.hw import HWUnit
from repro.estimation import annotate_ir_program, estimated_total_cycles
from repro.cdfg.interp import Interpreter
from repro.pum import dct_hw, filtercore_hw

SRC = """
float acc;
int work(int n) {
  for (int i = 0; i < n; i++) {
    acc += (float)i * 0.5;
  }
  return (int)acc;
}
"""


class TestHWExecution:
    def test_functional_result_matches_interpreter(self):
        ir = compile_cmini(SRC)
        expected = run_function(compile_cmini(SRC), "work", 20)
        unit = HWUnit("u", ir, "work", dct_hw(), args=(20,))
        assert unit.run() == expected

    def test_cycles_accumulate_per_block(self):
        ir = compile_cmini(SRC)
        unit = HWUnit("u", ir, "work", dct_hw(), args=(20,))
        unit.run()
        assert unit.cycles > 0
        assert unit.n_blocks_executed > 20  # loop body ran 20 times

    def test_cycles_scale_with_work(self):
        def cycles_for(n):
            unit = HWUnit("u", compile_cmini(SRC), "work", dct_hw(), args=(n,))
            unit.run()
            return unit.cycles

        assert cycles_for(100) > 4 * cycles_for(20)

    def test_cached_and_uncached_schedules_agree(self):
        cached = HWUnit("u", compile_cmini(SRC), "work", dct_hw(),
                        args=(25,), cache_schedules=True)
        uncached = HWUnit("u", compile_cmini(SRC), "work", dct_hw(),
                          args=(25,), cache_schedules=False)
        cached.run()
        uncached.run()
        assert cached.cycles == uncached.cycles

    def test_dynamic_cycles_equal_static_annotation(self):
        """The HW unit's dynamic total equals the static annotator's
        trace-weighted total — the property that makes Table-3 HW estimates
        exact."""
        ir = compile_cmini(SRC)
        pum = dct_hw()
        annotate_ir_program(ir, pum)
        interp = Interpreter(ir)
        interp.call("work", 33)
        static_total = estimated_total_cycles(ir, interp.block_counts)

        unit = HWUnit("u", compile_cmini(SRC), "work", pum, args=(33,))
        unit.run()
        assert unit.cycles == static_total

    def test_richer_datapath_is_faster(self):
        mac_heavy = """
        float out[16];
        int work(void) {
          for (int i = 0; i < 16; i++) {
            out[i] = (float)i * 0.5 + (float)(i + 1) * 0.25
                   + (float)(i + 2) * 0.125 + (float)(i + 3) * 0.0625;
          }
          return 0;
        }"""
        small = HWUnit("s", compile_cmini(mac_heavy), "work", dct_hw())
        big = HWUnit("b", compile_cmini(mac_heavy), "work", filtercore_hw())
        small.run()
        big.run()
        assert big.cycles < small.cycles  # 4 FPUs vs 1

    def test_comm_requires_binding(self):
        src = "int b[2]; int work(void) { send(1, b, 2); return 0; }"
        unit = HWUnit("u", compile_cmini(src), "work", dct_hw())
        try:
            unit.run()
        except RuntimeError as exc:
            assert "comm binding" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected RuntimeError")

    def test_stats(self):
        unit = HWUnit("u", compile_cmini(SRC), "work", dct_hw(), args=(5,))
        unit.run()
        stats = unit.stats()
        assert stats["cycles"] == unit.cycles
        assert stats["blocks_executed"] == unit.n_blocks_executed
