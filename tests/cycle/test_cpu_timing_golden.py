"""Golden timing tests for the cycle-accurate CPU model.

Hand-assembled R32 snippets with exactly known cycle counts pin the board's
timing semantics (issue/forwarding/occupancy/cache/branch rules), so timing
refactors cannot silently shift the reference that all accuracy experiments
compare against.
"""

from repro.isa.isa import Instr
from repro.isa.program import GLOBALS_BASE
from repro.cycle.cpu import CycleCPU


class _FakeImage:
    """A minimal hand-assembled program image."""

    def __init__(self, instrs, memory_words=4096):
        self.instrs = instrs
        self.memory_words = memory_words

    def fresh_memory(self):
        return [0] * self.memory_words


def run(instrs, icache=32768, dcache=32768, **kwargs):
    kwargs.setdefault("ext_latency", 0)
    cpu = CycleCPU(_FakeImage(instrs), icache, dcache, **kwargs)
    event, _ = cpu.run_until_event()
    assert event.kind == "halt"
    return cpu


def halted(*body):
    return list(body) + [Instr("halt")]


class TestIssueAndForwarding:
    def test_independent_alu_stream_cpi_one(self):
        # n ALU ops + halt, all i-hits: one issue per cycle.
        n = 10
        body = [Instr("li", rd=2, imm=i) for i in range(n)]
        cpu = run(halted(*body))
        base = run(halted()).cycle
        assert cpu.cycle - base == n

    def test_alu_chain_also_cpi_one(self):
        # Full forwarding: dependent adds back-to-back without stalls.
        body = [Instr("li", rd=2, imm=1)]
        body += [Instr("add", rd=2, ra=2, rb=2) for _ in range(8)]
        chain = run(halted(*body)).cycle
        indep = run(halted(
            Instr("li", rd=2, imm=1),
            *[Instr("li", rd=3, imm=i) for i in range(8)]
        )).cycle
        assert chain == indep

    def test_mul_result_latency_three(self):
        use_now = halted(
            Instr("li", rd=2, imm=3),
            Instr("mul", rd=3, ra=2, rb=2),
            Instr("add", rd=4, ra=3, rb=3),  # waits for the multiplier
        )
        no_dep = halted(
            Instr("li", rd=2, imm=3),
            Instr("mul", rd=3, ra=2, rb=2),
            Instr("add", rd=4, ra=2, rb=2),  # independent
        )
        # The non-pipelined multiplier's occupancy already delays the next
        # issue by its full latency, so the dependent add can issue right
        # after — a dependency may not add further cycles on this core.
        assert run(use_now).cycle >= run(no_dep).cycle

    def test_nonpipelined_divider_blocks(self):
        two_divs = halted(
            Instr("li", rd=2, imm=64),
            Instr("li", rd=3, imm=2),
            Instr("divi", rd=4, ra=2, rb=3),
            Instr("divi", rd=5, ra=2, rb=3),
        )
        one_div = halted(
            Instr("li", rd=2, imm=64),
            Instr("li", rd=3, imm=2),
            Instr("divi", rd=4, ra=2, rb=3),
            Instr("li", rd=5, imm=0),
        )
        assert run(two_divs).cycle - run(one_div).cycle >= 30


class TestMemoryTiming:
    def test_dcache_miss_costs_ext_latency(self):
        addr = GLOBALS_BASE
        load = halted(Instr("lw", rd=2, ra=0, imm=addr))
        # Two runs: one with the line warm (load twice), one cold.
        cold = run(load, dcache=2048).cycle
        warm_prog = halted(
            Instr("lw", rd=2, ra=0, imm=addr),
            Instr("lw", rd=3, ra=0, imm=addr),
        )
        warm = run(warm_prog, dcache=2048).cycle
        # Second (hit) load costs 1 cycle; the miss cost appears once.
        assert warm == cold + 1

    def test_no_dcache_every_access_pays(self):
        addr = GLOBALS_BASE
        n = 6
        prog = halted(*[
            Instr("lw", rd=2, ra=0, imm=addr) for _ in range(n)
        ])
        nocache = run(prog, dcache=0, ext_latency=22).cycle
        cached = run(prog, dcache=32768, ext_latency=22).cycle
        # cached: first access misses; rest hit. nocache: all miss.
        assert nocache - cached == (n - 1) * 22

    def test_icache_miss_stalls_fetch(self):
        n = 8
        prog = halted(*[Instr("li", rd=2, imm=i) for i in range(n)])
        cold = run(prog, icache=0, ext_latency=22).cycle
        warm = run(prog, icache=32768, ext_latency=22).cycle
        # With no cache every one of the n+1 fetches pays 22; with a cache
        # each distinct line (8 words) misses exactly once.
        lines = (n + 1 + 7) // 8
        assert cold - warm == (n + 1 - lines) * 22


class TestBranchTiming:
    def test_mispredict_penalty(self):
        # beqz taken with static-not-taken: +penalty.
        taken = halted(
            Instr("li", rd=2, imm=0),
            Instr("beqz", ra=2, target=2),  # taken (target = halt)
        )
        not_taken = halted(
            Instr("li", rd=2, imm=1),
            Instr("beqz", ra=2, target=2),
        )
        t = run(taken, branch_policy="static-not-taken", branch_penalty=2)
        nt = run(not_taken, branch_policy="static-not-taken", branch_penalty=2)
        assert t.cycle == nt.cycle + 2
        assert t.predictor.mispredictions == 1
        assert nt.predictor.mispredictions == 0

    def test_jr_always_pays_redirect(self):
        prog = halted(
            Instr("li", rd=31, imm=2),
            Instr("jr", ra=31),
        )
        base = halted(
            Instr("li", rd=31, imm=2),
            Instr("li", rd=3, imm=0),
        )
        assert run(prog).cycle == run(base).cycle + 2
