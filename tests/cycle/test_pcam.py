"""Unit tests for the PCAM multi-PE co-simulation."""

import pytest

from repro.pum import dct_hw, microblaze
from repro.cycle import run_pcam
from repro.tlm import Design, PlatformError

CPU_SRC = """
int buf[8];
int total;
int main(void) {
  for (int f = 0; f < 3; f++) {
    for (int i = 0; i < 8; i++) buf[i] = f * 8 + i;
    send(1, buf, 8);
    recv(2, buf, 8);
    for (int i = 0; i < 8; i++) total += buf[i];
  }
  return total;
}
"""

HW_SRC = """
int data[8];
void main(void) {
  for (int f = 0; f < 3; f++) {
    recv(1, data, 8);
    for (int i = 0; i < 8; i++) data[i] = data[i] * 3 + 1;
    send(2, data, 8);
  }
}
"""


def two_pe_design(icache=2048, dcache=2048):
    design = Design("pcam-test")
    design.add_pe("cpu", microblaze(icache, dcache))
    design.add_pe("hw0", dct_hw())
    design.add_bus("bus0")
    design.add_channel(1, "req", "bus0")
    design.add_channel(2, "rsp", "bus0")
    design.add_process("sw", CPU_SRC, "main", "cpu")
    design.add_process("acc", HW_SRC, "main", "hw0")
    return design


def expected_total():
    acc = 0
    for f in range(3):
        for i in range(8):
            acc += (f * 8 + i) * 3 + 1
    return acc


class TestCosimulation:
    def test_functional_result(self):
        board = run_pcam(two_pe_design())
        assert board.pe("sw").return_value == expected_total()

    def test_pe_kinds(self):
        board = run_pcam(two_pe_design())
        assert board.pe("sw").kind == "cpu"
        assert board.pe("acc").kind == "hw"

    def test_makespan_at_least_each_pe(self):
        board = run_pcam(two_pe_design())
        for stats in board.pes.values():
            assert board.makespan_cycles >= stats.cycles * 0.99

    def test_cache_configuration_matters(self):
        fast = run_pcam(two_pe_design(icache=32768, dcache=32768))
        slow = run_pcam(two_pe_design(icache=0, dcache=0))
        assert slow.makespan_cycles > fast.makespan_cycles
        assert slow.pe("sw").return_value == fast.pe("sw").return_value

    def test_cpu_stats_merged(self):
        stats = run_pcam(two_pe_design()).cpu_stats()
        assert stats["instrs"] > 0
        assert "icache_hits" in stats

    def test_deterministic(self):
        a = run_pcam(two_pe_design())
        b = run_pcam(two_pe_design())
        assert a.makespan_cycles == b.makespan_cycles
        assert {n: s.cycles for n, s in a.pes.items()} == {
            n: s.cycles for n, s in b.pes.items()
        }

    def test_cache_schedules_flag_preserves_cycles(self):
        fast = run_pcam(two_pe_design(), cache_schedules=True)
        slow = run_pcam(two_pe_design(), cache_schedules=False)
        assert fast.makespan_cycles == slow.makespan_cycles

    def test_invalid_design_rejected(self):
        design = Design("broken")
        design.add_pe("cpu", microblaze())
        with pytest.raises(PlatformError):
            run_pcam(design)

    def test_single_pe_sw_design(self):
        design = Design("sw-only")
        design.add_pe("cpu", microblaze(2048, 2048))
        design.add_process("p", """
        int main(void) {
          int s = 0;
          for (int i = 0; i < 30; i++) s += i;
          return s;
        }""", "main", "cpu")
        board = run_pcam(design)
        assert board.pe("p").return_value == 435
        assert board.makespan_cycles == board.pe("p").cycles
