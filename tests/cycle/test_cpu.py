"""Unit tests for the cycle-accurate CPU model."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import run_function
from repro.isa import compile_program
from repro.cycle import CycleCPU, CycleCPUError, run_to_halt


def image_of(source, entry="main", args=()):
    return compile_program(compile_cmini(source), entry, args)


LOOP = """
int main(void) {
  int s = 0;
  for (int i = 0; i < 40; i++) s += i * 3;
  return s;
}"""


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("source", [
        "int main(void) { return (9 * 9 - 1) / 4; }",
        "int main(void) { float x = 3.25; return (int)(x * x); }",
        """
        int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int main(void) { return fib(11); }
        """,
        """
        int a[8];
        int main(void) {
          for (int i = 0; i < 8; i++) a[i] = i ^ 5;
          int s = 0;
          for (int i = 0; i < 8; i++) s = s * 2 + a[i];
          return s;
        }""",
    ])
    def test_matches_interpreter(self, source):
        ir = compile_cmini(source)
        expected = run_function(ir, "main")
        image = compile_program(ir, "main", ())
        cpu = run_to_halt(image, 2048, 2048)
        assert cpu.return_value == expected

    def test_matches_iss_functionally(self):
        from repro.iss import ISS

        image = image_of(LOOP)
        iss = ISS(image).run()
        cpu = run_to_halt(image, 8192, 8192)
        assert cpu.return_value == iss.return_value
        assert cpu.n_instrs == iss.n_instrs


class TestTimingModel:
    def test_cycles_at_least_instruction_count(self):
        cpu = run_to_halt(image_of(LOOP), 32768, 32768)
        assert cpu.cycle >= cpu.n_instrs  # CPI >= 1 on a single-issue core

    def test_cache_misses_add_cycles(self):
        warm = run_to_halt(image_of(LOOP), 32768, 32768)
        cold = run_to_halt(image_of(LOOP), 0, 0)
        assert cold.cycle > 2 * warm.cycle
        assert cold.n_instrs == warm.n_instrs

    def test_dependency_chain_stalls(self):
        # Chained float adds: each waits the FPU result latency (4).
        chain = image_of("""
        int main(void) {
          float x = 1.0;
          x = x + 1.0; x = x + 2.0; x = x + 3.0; x = x + 4.0;
          x = x + 5.0; x = x + 6.0; x = x + 7.0; x = x + 8.0;
          return (int)x;
        }""")
        ints = image_of("""
        int main(void) {
          int x = 1;
          x = x + 1; x = x + 2; x = x + 3; x = x + 4;
          x = x + 5; x = x + 6; x = x + 7; x = x + 8;
          return x;
        }""")
        float_cpu = run_to_halt(chain, 32768, 32768)
        int_cpu = run_to_halt(ints, 32768, 32768)
        assert float_cpu.cycle > int_cpu.cycle

    def test_division_dominates(self):
        divs = image_of("""
        int main(void) {
          int s = 1 << 30;
          for (int i = 0; i < 20; i++) s = s / 2;
          return s;
        }""")
        shifts = image_of("""
        int main(void) {
          int s = 1 << 30;
          for (int i = 0; i < 20; i++) s = s >> 1;
          return s;
        }""")
        assert (run_to_halt(divs, 32768, 32768).cycle
                > run_to_halt(shifts, 32768, 32768).cycle + 20 * 25)

    def test_branch_predictor_reduces_cycles(self):
        # The `if` body is entered ~90% of the time and is laid out
        # out-of-line, so its bnez is taken 90%: static-not-taken
        # mispredicts those, 2bit learns them.
        image = image_of("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 100; i++) {
            if (i % 10 != 0) s += 100;
          }
          return s;
        }""")
        predicted = CycleCPU(image, 32768, 32768, branch_policy="2bit")
        predicted.run_until_event()
        static = CycleCPU(image, 32768, 32768,
                          branch_policy="static-not-taken")
        static.run_until_event()
        assert predicted.cycle < static.cycle
        assert predicted.predictor.miss_rate < static.predictor.miss_rate

    def test_stats_shape(self):
        cpu = run_to_halt(image_of(LOOP), 2048, 2048)
        stats = cpu.stats()
        assert stats["instrs"] == cpu.n_instrs
        assert stats["icache_hits"] + stats["icache_misses"] > 0
        assert 0.0 <= stats["branch_miss_rate"] <= 1.0

    def test_livelock_guard(self):
        image = image_of("int main(void) { while (1) { } return 0; }")
        cpu = CycleCPU(image, 0, 0, max_instrs=5_000)
        with pytest.raises(CycleCPUError):
            cpu.run_until_event()


class TestCommunicationEvents:
    SRC = """
    int buf[4];
    int main(void) {
      for (int i = 0; i < 4; i++) buf[i] = i + 1;
      send(9, buf, 4);
      recv(9, buf, 2);
      return buf[0] + buf[1];
    }"""

    def test_send_then_recv_events(self):
        image = image_of(self.SRC)
        cpu = CycleCPU(image, 2048, 2048)
        event, elapsed = cpu.run_until_event()
        assert event.kind == "send"
        assert event.chan == 9
        assert elapsed > 0
        payload = cpu.memory[event.addr : event.addr + event.count]
        assert payload == [1, 2, 3, 4]

        event, _ = cpu.run_until_event()
        assert event.kind == "recv"
        cpu.complete_recv([40, 2])
        event, _ = cpu.run_until_event()
        assert event.kind == "halt"
        assert cpu.return_value == 42

    def test_recv_without_completion_rejected(self):
        image = image_of(self.SRC)
        cpu = CycleCPU(image, 2048, 2048)
        cpu.run_until_event()  # send
        cpu.run_until_event()  # recv pending
        with pytest.raises(CycleCPUError):
            cpu.complete_recv([1])  # wrong count

    def test_halted_cpu_stays_halted(self):
        image = image_of("int main(void) { return 5; }")
        cpu = CycleCPU(image)
        assert cpu.run_until_event()[0].kind == "halt"
        event, elapsed = cpu.run_until_event()
        assert event.kind == "halt"
        assert elapsed == 0

    def test_comm_through_no_platform_raises_via_helper(self):
        image = image_of(self.SRC)
        with pytest.raises(CycleCPUError):
            run_to_halt(image, 2048, 2048)
