"""Resilience tests for design-space exploration: crashed workers, stuck
points, degradation to sequential evaluation, and checkpoint resume."""

import json
import os
import signal
import time

import pytest

from repro.explore import (
    CheckpointError,
    DesignPoint,
    ExplorationCheckpoint,
    explore,
)
from repro.pum import microblaze
from repro.tlm import Design

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="resilience tests exercise forked pools"
)


def _make_design(name, n_iters=60):
    design = Design(name)
    design.add_pe("cpu", microblaze(8192, 4096))
    design.add_process("p", """
    int main(void) {
      int s = 0;
      for (int i = 0; i < %d; i++) s += i * 3;
      return s;
    }""" % n_iters, "main", "cpu")
    return design


def _plain_point(name, n_iters=60, log=None):
    def build():
        if log is not None:
            with open(log, "a") as handle:
                handle.write(name + "\n")
        return _make_design(name, n_iters)

    return DesignPoint(name, build, area=1)


def _kill_once_point(name, flag_path):
    """Dies by SIGKILL on its first evaluation (simulating an OOM-killed
    worker); evaluates normally on any later attempt."""

    def build():
        if not os.path.exists(flag_path):
            open(flag_path, "w").close()
            os.kill(os.getpid(), signal.SIGKILL)
        return _make_design(name)

    return DesignPoint(name, build, area=1)


def _kill_always_in_worker_point(name):
    """Dies by SIGKILL on every evaluation in a forked worker, but evaluates
    normally in the parent — forcing degradation to the sequential path."""
    parent_pid = os.getpid()

    def build():
        if os.getpid() != parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return _make_design(name)

    return DesignPoint(name, build, area=1)


def _hang_point(name):
    def build():
        time.sleep(120.0)
        return _make_design(name)

    return DesignPoint(name, build, area=1)


def _raise_point(name):
    def build():
        raise RuntimeError("synthetic build failure")

    return DesignPoint(name, build, area=1)


class TestWorkerCrash:
    def test_killed_worker_results_still_complete_and_ordered(self, tmp_path):
        flag = str(tmp_path / "died-once")
        points = [
            _plain_point("a"),
            _kill_once_point("victim", flag),
            _plain_point("b"),
        ]
        result = explore(points, workers=2)
        assert [r.point.name for r in result.results] == ["a", "victim", "b"]
        assert all(r.ok for r in result.results)
        assert all(r.makespan_cycles > 0 for r in result.results)
        assert os.path.exists(flag)  # the kill really happened

    def test_persistent_crashes_degrade_to_sequential(self):
        points = [
            _plain_point("a"),
            _kill_always_in_worker_point("poison"),
            _plain_point("b"),
        ]
        # Every pool dies; after `retries` rebuilds the leftovers are
        # evaluated in-process — no unhandled BrokenProcessPool, complete
        # input-ordered results.
        result = explore(points, workers=2, retries=1, retry_backoff=0.01)
        assert [r.point.name for r in result.results] == ["a", "poison", "b"]
        assert all(r.ok for r in result.results)

    def test_point_exception_is_isolated(self):
        points = [
            _plain_point("a"),
            _raise_point("broken"),
            _plain_point("b"),
        ]
        result = explore(points, workers=2)
        assert [r.point.name for r in result.results] == ["a", "broken", "b"]
        failed = result.results[1]
        assert not failed.ok and "synthetic build failure" in failed.error
        assert [r.point.name for r in result.failures] == ["broken"]
        # Rankings and the Pareto front skip the failure.
        assert {r.point.name for r in result.ranked()} == {"a", "b"}

    def test_sequential_point_exception_is_isolated(self):
        result = explore([_raise_point("broken"), _plain_point("a")])
        assert not result.results[0].ok
        assert result.results[1].ok


class TestPointTimeout:
    def test_stuck_point_reported_not_wedged(self):
        points = [
            _hang_point("stuck"),
            _plain_point("a"),
            _plain_point("b"),
        ]
        start = time.perf_counter()
        result = explore(points, workers=2, point_timeout=2.0)
        elapsed = time.perf_counter() - start
        assert elapsed < 60.0  # nowhere near the 120 s hang
        assert [r.point.name for r in result.results] == ["stuck", "a", "b"]
        stuck = result.results[0]
        assert not stuck.ok and "timeout" in stuck.error
        assert result.results[1].ok and result.results[2].ok


class TestCheckpoint:
    def test_resume_skips_completed_points(self, tmp_path):
        log = str(tmp_path / "evals.log")
        ckpt = str(tmp_path / "sweep.json")
        points = [_plain_point(name, log=log) for name in ("a", "b", "c")]

        first = explore(points, checkpoint=ckpt)
        assert all(r.ok and not r.cached for r in first.results)
        assert open(log).read().splitlines() == ["a", "b", "c"]

        second = explore(points, checkpoint=ckpt)
        # Zero re-evaluations: the log did not grow, every result is cached.
        assert open(log).read().splitlines() == ["a", "b", "c"]
        assert all(r.cached for r in second.results)
        assert (
            [r.makespan_cycles for r in second.results]
            == [r.makespan_cycles for r in first.results]
        )

    def test_partial_checkpoint_only_evaluates_missing(self, tmp_path):
        log = str(tmp_path / "evals.log")
        ckpt_path = str(tmp_path / "sweep.json")
        points = [_plain_point(name, log=log) for name in ("a", "b")]
        explore(points[:1], checkpoint=ckpt_path)
        result = explore(points, checkpoint=ckpt_path)
        assert open(log).read().splitlines() == ["a", "b"]
        assert result.results[0].cached and not result.results[1].cached

    def test_checkpoint_written_during_parallel_sweep(self, tmp_path):
        ckpt_path = str(tmp_path / "sweep.json")
        points = [_plain_point(name) for name in ("a", "b", "c")]
        explore(points, workers=2, checkpoint=ckpt_path)
        data = json.load(open(ckpt_path))
        assert set(data["points"]) == {"a", "b", "c"}
        for entry in data["points"].values():
            assert entry["makespan_cycles"] > 0
            assert entry["per_process_cycles"]

    def test_failed_points_are_not_checkpointed(self, tmp_path):
        ckpt_path = str(tmp_path / "sweep.json")
        explore([_raise_point("broken"), _plain_point("a")],
                checkpoint=ckpt_path)
        restored = ExplorationCheckpoint(ckpt_path)
        assert set(restored.completed) == {"a"}

    def test_duplicate_names_rejected(self, tmp_path):
        points = [_plain_point("dup"), _plain_point("dup")]
        with pytest.raises(CheckpointError):
            explore(points, checkpoint=str(tmp_path / "c.json"))

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{torn write")
        with pytest.raises(CheckpointError):
            explore([_plain_point("a")], checkpoint=str(path))

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 99, "points": {}}))
        with pytest.raises(CheckpointError):
            explore([_plain_point("a")], checkpoint=str(path))

    def test_granularity_mismatch_rejected(self, tmp_path):
        ckpt_path = str(tmp_path / "sweep.json")
        explore([_plain_point("a")], checkpoint=ckpt_path,
                granularity="transaction")
        with pytest.raises(CheckpointError) as exc_info:
            explore([_plain_point("a")], checkpoint=ckpt_path,
                    granularity="block")
        assert "granularity" in str(exc_info.value)

    def test_checkpoint_survives_killed_sweep(self, tmp_path):
        # Simulate the interrupted sweep by checkpointing a prefix, then
        # confirm a fresh ExplorationCheckpoint reads it back (the file is
        # rewritten atomically after every point, so any interruption point
        # leaves a loadable file).
        ckpt = ExplorationCheckpoint(str(tmp_path / "sweep.json"))
        ckpt.record("done-point", 1234, {"p": 1234}, 0.5)
        restored = ExplorationCheckpoint(str(tmp_path / "sweep.json"))
        assert restored.completed["done-point"]["makespan_cycles"] == 1234
