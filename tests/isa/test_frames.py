"""Unit tests for stack-frame layout (FrameInfo) and image geometry."""

from repro.api import compile_cmini
from repro.isa.program import FrameInfo, GLOBALS_BASE, Image


def frame_of(source, func="f"):
    program = compile_cmini(source)
    return FrameInfo(program.function(func)), program


class TestFrameLayout:
    def test_reserved_slots(self):
        frame, _ = frame_of("int f(void) { return 1; }")
        # Slot 0: saved fp, slot 1: saved link.
        assert frame.ap_save_base == 2
        assert frame.size >= 2

    def test_scalar_params_after_ap_area(self):
        frame, _ = frame_of(
            "int f(int a, float w[], int b) { return a + b; }"
        )
        assert frame.array_params == ["w"]
        assert frame.param_offsets["a"] == frame.ap_save_base + 1
        assert frame.param_offsets["b"] == frame.param_offsets["a"] + 1

    def test_local_array_occupies_size_words(self):
        frame, _ = frame_of("""
        int f(void) {
          int small;
          float big[10];
          int after;
          return 0;
        }""")
        big = frame.local_offsets["big"]
        after = frame.local_offsets["after"]
        assert after == big + 10

    def test_all_slots_disjoint(self):
        frame, program = frame_of("""
        int f(int a, int b, float v[]) {
          int x; int y;
          float t[6];
          int z;
          return a + b + x + y + z;
        }""")
        spans = []
        for name, off in frame.param_offsets.items():
            spans.append((off, off + 1))
        func = program.function("f")
        for name, off in frame.local_offsets.items():
            ctype = func.locals[name]
            size = getattr(ctype, "size", None) or 1
            spans.append((off, off + size))
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        assert spans[0][0] >= frame.ap_save_base + len(frame.array_params)

    def test_spill_slots_extend_frame(self):
        frame, _ = frame_of("int f(void) { return 1; }")
        base_size = frame.size
        frame.n_spills = 3
        assert frame.size == base_size + 3


class TestImageGeometry:
    def test_globals_start_at_base(self):
        program = compile_cmini("int first; int rest[4];")
        image = Image(program)
        assert image.global_addr("first") == GLOBALS_BASE
        assert image.global_addr("rest") == GLOBALS_BASE + 1

    def test_stack_above_globals(self):
        program = compile_cmini("int big[100];")
        image = Image(program)
        top = image.global_addr("big") + 100
        assert image.stack_base >= top
        assert image.memory_words > image.stack_base

    def test_stack_size_override(self):
        program = compile_cmini("int x;")
        small = Image(program, stack_words=256)
        large = Image(program, stack_words=65536)
        assert large.memory_words - small.memory_words == 65536 - 256

    def test_fresh_memory_isolated(self):
        program = compile_cmini("int a[2] = {5, 6};")
        image = Image(program)
        mem1 = image.fresh_memory()
        mem1[image.global_addr("a")] = 999
        mem2 = image.fresh_memory()
        assert mem2[image.global_addr("a")] == 5

    def test_code_bytes(self):
        from repro.isa import compile_program

        program = compile_cmini("int main(void) { return 2; }")
        image = compile_program(program, "main", ())
        assert image.code_bytes == image.n_instrs * 4
