"""Unit tests for the R32 ISA definitions."""

import pytest

from repro.isa.isa import (
    ALL_OPS,
    ARRAY_PARAM_REGS,
    COMM_OPS,
    CTL_OPS,
    FLOAT3_OPS,
    INT3_OPS,
    Instr,
    R_FP,
    R_LINK,
    R_SP,
    R_ZERO,
    TEMP_REGS,
    TIMING_CLASS,
    format_instr,
)


class TestRegisterConventions:
    def test_special_registers_disjoint_from_pools(self):
        special = {R_ZERO, R_SP, R_FP, R_LINK, 1}
        assert not special & set(TEMP_REGS)
        assert not special & set(ARRAY_PARAM_REGS)
        assert not set(TEMP_REGS) & set(ARRAY_PARAM_REGS)

    def test_all_registers_in_range(self):
        for reg in list(TEMP_REGS) + list(ARRAY_PARAM_REGS):
            assert 0 <= reg < 32


class TestInstr:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instr("frobnicate")

    def test_fields_default_none(self):
        instr = Instr("halt")
        assert instr.rd is None and instr.imm is None

    def test_repr_contains_assembly(self):
        assert "add r1, r2, r3" in repr(Instr("add", rd=1, ra=2, rb=3))


class TestTimingClasses:
    def test_every_opcode_classified(self):
        for op in ALL_OPS:
            assert op in TIMING_CLASS, op

    def test_class_values_sane(self):
        valid = {"alu", "mul", "div", "falu", "fmul", "fdiv", "load",
                 "store", "move", "branch", "call", "comm"}
        assert set(TIMING_CLASS.values()) <= valid

    def test_float_ops_classified_float(self):
        assert TIMING_CLASS["fadd"] == "falu"
        assert TIMING_CLASS["fmul"] == "fmul"
        assert TIMING_CLASS["fdiv"] == "fdiv"

    def test_memory_classes(self):
        assert TIMING_CLASS["lw"] == TIMING_CLASS["lwx"] == "load"
        assert TIMING_CLASS["sw"] == TIMING_CLASS["swx"] == "store"


class TestFormatting:
    def test_each_family_formats(self):
        samples = [
            Instr("add", rd=1, ra=2, rb=3),
            Instr("fmul", rd=4, ra=5, rb=6),
            Instr("mov", rd=1, ra=2),
            Instr("li", rd=1, imm=42),
            Instr("addi", rd=1, ra=2, imm=-3),
            Instr("lw", rd=1, ra=30, imm=4),
            Instr("sw", rd=1, ra=30, imm=4),
            Instr("lwx", rd=1, ra=0, rb=5, imm=100),
            Instr("swx", rc=7, ra=0, rb=5, imm=100),
            Instr("beqz", ra=1, target=10),
            Instr("j", target=3),
            Instr("jal", target=8),
            Instr("jr", ra=31),
            Instr("halt"),
            Instr("send", ra=2, rb=3, rc=4),
        ]
        for instr in samples:
            text = format_instr(instr)
            assert instr.op.rstrip("bi") [:2] in text or instr.op in text

    def test_op_families_are_disjoint(self):
        families = [INT3_OPS, FLOAT3_OPS, CTL_OPS, COMM_OPS]
        for i, a in enumerate(families):
            for b in families[i + 1:]:
                assert not a & b
