"""Unit tests for the IR → R32 compiler (validated through execution on the
ISS, plus structural checks on the emitted code)."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import run_function
from repro.isa import compile_program, format_instr
from repro.isa.compiler import CompileError
from repro.iss import ISS


def run_both(source, entry="main", args=()):
    ir = compile_cmini(source)
    expected = run_function(ir, entry, *args)
    image = compile_program(ir, entry, args)
    result = ISS(image).run()
    return expected, result


class TestExecutionEquivalence:
    def test_arithmetic(self):
        expected, result = run_both(
            "int main(void) { return (13 * 7 - 5) / 3 % 10 + (1 << 4); }"
        )
        assert result.return_value == expected

    def test_negative_division(self):
        expected, result = run_both("int main(void) { return -17 / 5 * 10 + -17 % 5; }")
        assert result.return_value == expected

    def test_floats(self):
        expected, result = run_both("""
        int main(void) {
          float x = 1.5;
          float y = x * x + 0.25;
          if (y > 2.0) return (int)(y * 100.0);
          return 0;
        }""")
        assert result.return_value == expected

    def test_global_arrays(self):
        expected, result = run_both("""
        int a[5] = {9, 8, 7, 6, 5};
        int main(void) {
          int s = 0;
          for (int i = 0; i < 5; i++) s = s * 10 + a[i];
          return s;
        }""")
        assert result.return_value == expected

    def test_local_arrays(self):
        expected, result = run_both("""
        int main(void) {
          int a[4];
          for (int i = 0; i < 4; i++) a[i] = i + 1;
          return a[0] * a[1] * a[2] * a[3];
        }""")
        assert result.return_value == expected

    def test_local_array_initializer_materialised(self):
        expected, result = run_both("""
        int main(void) {
          float w[3] = {0.25, 0.5, 0.25};
          float s = 0.0;
          for (int i = 0; i < 3; i++) s += w[i];
          return (int)(s * 100.0);
        }""")
        assert result.return_value == expected

    def test_function_calls_with_scalars(self):
        expected, result = run_both("""
        int add3(int a, int b, int c) { return a + b + c; }
        int main(void) { return add3(1, add3(2, 3, 4), 5); }
        """)
        assert result.return_value == expected

    def test_array_parameters(self):
        expected, result = run_both("""
        int sum(int a[], int n) {
          int s = 0;
          for (int i = 0; i < n; i++) s += a[i];
          return s;
        }
        int g[6] = {1, 2, 3, 4, 5, 6};
        int main(void) {
          int loc[3] = {10, 20, 30};
          return sum(g, 6) * 1000 + sum(loc, 3);
        }""")
        assert result.return_value == expected

    def test_array_param_forwarding(self):
        # An array parameter passed onward to another function.
        expected, result = run_both("""
        int head(int a[]) { return a[0]; }
        int wrap(int a[]) { return head(a) + 1; }
        int b[2] = {41, 0};
        int main(void) { return wrap(b); }
        """)
        assert result.return_value == expected

    def test_two_array_params_swapped_in_recursive_call(self):
        expected, result = run_both("""
        int pick(int a[], int b[], int depth) {
          if (depth == 0) return a[0] * 10 + b[0];
          return pick(b, a, depth - 1);
        }
        int x[1] = {3};
        int y[1] = {7};
        int main(void) { return pick(x, y, 3); }
        """)
        assert result.return_value == expected

    def test_recursion_deep(self):
        expected, result = run_both("""
        int sumto(int n) { if (n == 0) return 0; return n + sumto(n - 1); }
        int main(void) { return sumto(50); }
        """)
        assert result.return_value == expected

    def test_value_live_across_call_is_spilled(self):
        expected, result = run_both("""
        int f(int x) { return x * 2; }
        int main(void) {
          int a = 5;
          return (a + 3) * 1000 + f(a) + (a - 1) * f(2);
        }""")
        assert result.return_value == expected

    def test_register_pressure_spills(self):
        # A deep expression tree forcing temp spills.
        terms = " + ".join(
            "(a%d * %d + %d)" % (i % 3, i + 1, i) for i in range(30)
        )
        source = """
        int main(void) {
          int a0 = 1; int a1 = 2; int a2 = 3;
          return %s;
        }""" % terms
        expected, result = run_both(source)
        assert result.return_value == expected

    def test_cross_block_temp_via_ternary(self):
        expected, result = run_both("""
        int g(int v) { return v + 1; }
        int main(void) {
          int s = 2;
          s += g(s) > 2 ? s * 10 : -s;
          return s;
        }""")
        assert result.return_value == expected

    def test_entry_args(self):
        ir = compile_cmini("int main(int a, int b) { return a * 100 + b; }")
        image = compile_program(ir, "main", (7, 9))
        assert ISS(image).run().return_value == 709

    def test_entry_args_mismatch_rejected(self):
        ir = compile_cmini("int main(int a) { return a; }")
        with pytest.raises(CompileError):
            compile_program(ir, "main", ())

    def test_global_scalar_updates(self):
        expected, result = run_both("""
        int counter;
        void bump(void) { counter += 2; }
        int main(void) {
          for (int i = 0; i < 5; i++) bump();
          return counter;
        }""")
        assert result.return_value == expected


class TestCodeShape:
    def test_instruction_count_tracks_ir_ops(self):
        """Compiled size stays within a small factor of IR ops (the property
        that makes source-level estimation meaningful)."""
        source = """
        float f(float v[], int n) {
          float s = 0.0;
          for (int i = 0; i < n; i++) s += v[i] * v[i];
          return s;
        }
        float buf[16];
        int main(void) { return (int)f(buf, 16); }
        """
        ir = compile_cmini(source)
        image = compile_program(ir, "main", ())
        assert image.n_instrs < 3 * ir.n_ops + 40

    def test_disassembly_renders(self):
        ir = compile_cmini("int main(void) { return 1 + 2; }")
        image = compile_program(ir, "main", ())
        text = image.disassemble()
        assert "main:" in text
        assert "halt" in text
        for instr in image.instrs:
            format_instr(instr)  # never raises

    def test_branch_targets_resolved(self):
        ir = compile_cmini("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 3; i++) if (i != 1) s += i;
          return s;
        }""")
        image = compile_program(ir, "main", ())
        for instr in image.instrs:
            if instr.op in ("beqz", "bnez", "j", "jal"):
                assert isinstance(instr.target, int)
                assert 0 <= instr.target < image.n_instrs

    def test_globals_have_disjoint_layout(self):
        ir = compile_cmini("int a[4]; float b; int c[2];")
        image = compile_program(
            ir, "main", ()
        ) if "main" in ir.functions else None
        # Build layout-only image.
        from repro.isa.program import Image

        image = Image(ir)
        spans = sorted(
            (addr, addr + size) for addr, size in image.global_layout.values()
        )
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_memory_initialisation(self):
        from repro.isa.program import Image

        ir = compile_cmini("int a[3] = {5, 0, 7}; float x = 1.5;")
        image = Image(ir)
        memory = image.fresh_memory()
        base = image.global_addr("a")
        assert memory[base] == 5
        assert memory[base + 1] == 0
        assert memory[base + 2] == 7
        assert memory[image.global_addr("x")] == 1.5
