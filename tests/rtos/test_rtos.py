"""Tests for the timed RTOS model extension."""

import pytest

from repro.pum import microblaze
from repro.rtos import CPUShare, RTOSModel
from repro.simkernel import Kernel
from repro.tlm import Design, generate_tlm

WORK = """
int out[1];
void main(void) {
  for (int r = 0; r < 3; r++) {
    int s = 0;
    for (int i = 0; i < 100; i++) s += i;
    out[0] = s;
    send(%d, out, 1);
  }
}
"""

SINK = """
int buf[1];
int total;
void main(void) {
  for (int r = 0; r < 6; r++) {
    recv(%d, buf, 1);
    total += buf[0];
  }
}
"""


class TestRTOSModel:
    def test_defaults(self):
        model = RTOSModel()
        assert model.policy == "fifo"
        assert model.context_switch_cycles >= 0

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            RTOSModel(policy="edf")

    def test_negative_cs_rejected(self):
        with pytest.raises(ValueError):
            RTOSModel(context_switch_cycles=-1)

    def test_priorities(self):
        model = RTOSModel(policy="priority", priorities={"a": 1})
        assert model.priority_of("a") == 1
        assert model.priority_of("zzz") > 1


class TestCPUShare:
    def test_serialises_two_processes(self):
        kernel = Kernel()
        share = CPUShare(kernel, "cpu", 10.0, RTOSModel(context_switch_cycles=0))
        finish = {}

        def runner(name):
            def body(process):
                share.execute(process, name, 100)
                finish[name] = kernel.now
            return body

        kernel.add_process("a", runner("a"))
        kernel.add_process("b", runner("b"))
        kernel.run()
        assert finish["a"] == 1000.0
        assert finish["b"] == 2000.0  # waited for a

    def test_context_switch_charged_on_change(self):
        kernel = Kernel()
        share = CPUShare(kernel, "cpu", 10.0,
                         RTOSModel(context_switch_cycles=50))

        def body(process):
            share.execute(process, "a", 10)
            share.execute(process, "a", 10)  # same process: no switch

        kernel.add_process("a", body)
        kernel.run()
        assert share.n_context_switches == 0
        # First dispatch pays the switch-in cost once.
        assert share.busy_cycles == 50 + 10 + 10

    def test_zero_cycles_is_noop(self):
        kernel = Kernel()
        share = CPUShare(kernel, "cpu", 10.0, RTOSModel())

        def body(process):
            share.execute(process, "a", 0)

        kernel.add_process("a", body)
        kernel.run()
        assert share.busy_cycles == 0


class TestTimedTLMWithRTOS:
    def _design(self, cs_cycles):
        design = Design("rtos")
        design.add_pe(
            "cpu", microblaze(8192, 4096),
            rtos=RTOSModel(context_switch_cycles=cs_cycles),
        )
        design.add_bus("b")
        design.add_channel(1, "c1", "b")
        design.add_channel(2, "c2", "b")
        design.add_process("w1", WORK % 1, "main", "cpu")
        design.add_process("w2", WORK % 2, "main", "cpu")
        design.add_pe("io", microblaze(8192, 4096))
        design.add_process("sink", (
            """
            int buf[1];
            int total;
            void main(void) {
              for (int r = 0; r < 3; r++) {
                recv(1, buf, 1);
                total += buf[0];
                recv(2, buf, 1);
                total += buf[0];
              }
            }
            """
        ), "main", "io")
        return design

    def test_shared_cpu_serialises_computation(self):
        result = generate_tlm(self._design(0), timed=True).run()
        w1 = result.process("w1").cycles
        w2 = result.process("w2").cycles
        # Makespan reflects both workloads executing on one processor.
        assert result.makespan_cycles >= (w1 + w2) * 0.9

    def test_context_switch_cost_extends_makespan(self):
        cheap = generate_tlm(self._design(0), timed=True).run()
        pricey = generate_tlm(self._design(2000), timed=True).run()
        assert pricey.makespan_cycles > cheap.makespan_cycles

    def test_results_unaffected_by_rtos(self):
        a = generate_tlm(self._design(0), timed=True).run()
        b = generate_tlm(self._design(500), timed=True).run()
        assert (a.process("w1").cycles, a.process("w2").cycles) == (
            b.process("w1").cycles, b.process("w2").cycles,
        )
