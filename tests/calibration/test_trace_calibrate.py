"""The calibration fast path: trace-once/evaluate-many must be bit-identical
to per-config replay, do exactly one reference run, and degrade gracefully
(TraceError fallback, fork-pool replay)."""

import pytest

from repro.calibration import calibrate_pum
from repro.calibration import calibrate as calibrate_mod
from repro.pum import microblaze
from repro.tlm import Design
from repro.trace import TraceError

SRC = """
int data[256];
int main(void) {
  int s = 0;
  for (int r = 0; r < 4; r++) {
    for (int i = 0; i < 256; i++) data[i] = i * r;
    for (int i = 0; i < 256; i++) {
      if ((data[i] & 3) == 0) s += data[i];
    }
  }
  return s;
}
"""

CONFIGS = [(0, 0), (2048, 2048), (8192, 4096), (16384, 16384),
           (32768, 2048)]


def make_design(icache, dcache):
    design = Design("cal-%d-%d" % (icache, dcache))
    design.add_pe("cpu", microblaze(icache, dcache))
    design.add_process("p", SRC, "main", "cpu")
    return design


def model_tables(result):
    memory = result.memory_model
    return (
        {s: (p.hit_rate, p.hit_delay) for s, p in memory.icache.items()},
        {s: (p.hit_rate, p.hit_delay) for s, p in memory.dcache.items()},
        memory.ext_latency,
        (result.branch_model.policy, result.branch_model.penalty,
         result.branch_model.miss_rate),
    )


@pytest.fixture(scope="module")
def replayed():
    return calibrate_pum(microblaze(), make_design, CONFIGS,
                         trace_cache=False)


class TestFastPath:
    def test_single_reference_run_and_bit_identity(self, replayed):
        fast = calibrate_pum(microblaze(), make_design, CONFIGS)
        assert fast.traced
        assert fast.reference_runs == 1
        assert replayed.reference_runs == len(CONFIGS)
        assert not replayed.traced
        assert set(fast.measurements) == set(replayed.measurements)
        for config in CONFIGS:
            slow_stats = dict(replayed.measurements[config])
            slow_stats.pop("cycles")  # timing: the one thing a trace omits
            assert fast.measurements[config] == slow_stats
        assert model_tables(fast) == model_tables(replayed)

    def test_trace_error_falls_back_to_replay(self, replayed, monkeypatch):
        def boom(design, **kwargs):
            raise TraceError("cannot answer this")

        monkeypatch.setattr(calibrate_mod, "capture_design_trace", boom)
        result = calibrate_pum(microblaze(), make_design, CONFIGS)
        assert not result.traced
        assert result.reference_runs == len(CONFIGS)
        assert result.measurements == replayed.measurements

    def test_trace_cache_false_forces_replay(self, replayed):
        assert "cycles" in next(iter(replayed.measurements.values()))

    def test_empty_config_list(self):
        result = calibrate_pum(microblaze(), make_design, [])
        assert result.measurements == {}
        assert result.reference_runs == 0


class TestParallelReplay:
    def test_workers_replay_is_identical(self, replayed):
        parallel = calibrate_pum(microblaze(), make_design, CONFIGS,
                                 trace_cache=False, workers=2)
        assert parallel.measurements == replayed.measurements
        assert parallel.reference_runs == len(CONFIGS)
        assert model_tables(parallel) == model_tables(replayed)
