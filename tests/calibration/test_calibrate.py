"""Tests for PUM calibration from reference runs."""

from repro.calibration import (
    build_branch_model,
    build_memory_model,
    calibrate_pum,
    measure_design,
)
from repro.pum import microblaze
from repro.tlm import Design

SRC = """
int data[256];
int main(void) {
  int s = 0;
  for (int r = 0; r < 4; r++) {
    for (int i = 0; i < 256; i++) data[i] = i * r;
    for (int i = 0; i < 256; i++) {
      if ((data[i] & 3) == 0) s += data[i];
    }
  }
  return s;
}
"""


def make_design(icache, dcache):
    design = Design("cal-%d-%d" % (icache, dcache))
    design.add_pe("cpu", microblaze(icache, dcache))
    design.add_process("p", SRC, "main", "cpu")
    return design


class TestBuilders:
    def test_memory_model_from_measurements(self):
        measurements = {
            (2048, 2048): {
                "icache_hits": 90, "icache_misses": 10,
                "dcache_hits": 80, "dcache_misses": 20,
            },
            (8192, 4096): {
                "icache_hits": 99, "icache_misses": 1,
                "dcache_hits": 95, "dcache_misses": 5,
            },
        }
        model = build_memory_model(measurements, ext_latency=22)
        assert abs(model.point("i", 2048).hit_rate - 0.9) < 1e-9
        assert abs(model.point("d", 4096).hit_rate - 0.95) < 1e-9
        assert model.ext_latency == 22

    def test_memory_model_merges_same_size(self):
        measurements = {
            (2048, 0): {"icache_hits": 50, "icache_misses": 50},
            (2048, 2048): {
                "icache_hits": 100, "icache_misses": 0,
                "dcache_hits": 10, "dcache_misses": 0,
            },
        }
        model = build_memory_model(measurements, ext_latency=22)
        assert abs(model.point("i", 2048).hit_rate - 0.75) < 1e-9

    def test_zero_sizes_skipped(self):
        model = build_memory_model(
            {(0, 0): {"icache_hits": 0, "icache_misses": 10,
                      "dcache_hits": 0, "dcache_misses": 10}},
            ext_latency=22,
        )
        assert model.icache == {}
        assert model.point("i", 0).hit_rate == 0.0

    def test_branch_model_weighted_average(self):
        measurements = {
            "a": {"branch_predictions": 100, "branch_miss_rate": 0.10},
            "b": {"branch_predictions": 300, "branch_miss_rate": 0.20},
        }
        model = build_branch_model(measurements, "2bit", penalty=2)
        assert abs(model.miss_rate - 0.175) < 1e-9
        assert model.policy == "2bit"


class TestEndToEnd:
    def test_measure_design_returns_cpu_stats(self):
        stats = measure_design(make_design(2048, 2048))
        assert stats["instrs"] > 0
        assert stats["icache_hits"] + stats["icache_misses"] > 0

    def test_calibrate_pum_covers_configs(self):
        configs = [(0, 0), (2048, 2048), (8192, 4096)]
        result = calibrate_pum(microblaze(), make_design, configs)
        assert set(result.measurements) == set(configs)
        assert result.memory_model.point("i", 2048).hit_rate > 0.9
        assert result.memory_model.point("d", 4096).hit_rate > 0.5
        assert 0.0 <= result.branch_model.miss_rate <= 1.0

    def test_calibrated_model_plugs_into_pum(self):
        configs = [(2048, 2048)]
        result = calibrate_pum(microblaze(), make_design, configs)
        pum = microblaze(
            2048, 2048,
            memory_model=result.memory_model,
            branch_model=result.branch_model,
        )
        assert pum.memory is result.memory_model

    def test_calibration_improves_estimate(self):
        """Calibrated statistics beat library defaults on this workload."""
        from repro.cycle import run_pcam
        from repro.tlm import generate_tlm

        isz, dsz = 2048, 2048
        board = run_pcam(make_design(isz, dsz)).makespan_cycles

        def tlm_cycles(pum):
            design = Design("est")
            design.add_pe("cpu", pum)
            design.add_process("p", SRC, "main", "cpu")
            return generate_tlm(design, timed=True).run().makespan_cycles

        default_est = tlm_cycles(microblaze(isz, dsz))
        cal = calibrate_pum(microblaze(), make_design, [(isz, dsz)])
        calibrated_est = tlm_cycles(microblaze(
            isz, dsz,
            memory_model=cal.memory_model, branch_model=cal.branch_model,
        ))
        assert abs(calibrated_est - board) < abs(default_est - board)
        assert abs(calibrated_est - board) / board < 0.15
