"""Tests for the MP3-style decoder application and its design variants."""

import pytest

from repro.apps.mp3 import (
    CHANNEL_IDS,
    HW_UNITS,
    Mp3Params,
    VARIANT_MAPPINGS,
    build_design,
    build_sources,
    compile_sw_image,
    cpu_source,
    hw_source,
)
from repro.cdfg.interp import Interpreter
from repro.cfrontend.semantic import parse_and_analyze
from repro.tlm import generate_tlm
from repro.workloads import make_frames

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


class TestParams:
    def test_derived_sizes(self):
        p = Mp3Params(n_subbands=8, n_slots=8, n_phases=8)
        assert p.granule_samples == 64
        assert p.v_size == 16
        assert p.fifo_size == 128
        assert p.imdct_out == 16
        assert p.frame_words() == 2 * 2 * 64

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Mp3Params(n_subbands=1)
        with pytest.raises(ValueError):
            Mp3Params(n_slots=4, n_alias=4)


class TestSourceGeneration:
    def test_all_variants_parse_and_analyze(self):
        for variant in VARIANT_MAPPINGS:
            cpu_src, hw_srcs, _ = build_sources(variant, SMALL, n_frames=1)
            parse_and_analyze(cpu_src)
            for src in hw_srcs.values():
                parse_and_analyze(src)

    def test_sw_variant_has_no_channels(self):
        cpu_src, hw_srcs, _ = build_sources("SW", SMALL, n_frames=1)
        assert "send(" not in cpu_src
        assert hw_srcs == {}

    def test_sw4_offloads_everything(self):
        cpu_src, hw_srcs, _ = build_sources("SW+4", SMALL, n_frames=1)
        assert set(hw_srcs) == set(HW_UNITS)
        assert "imdct_granule" not in cpu_src
        assert "filter_granule" not in cpu_src
        for unit in HW_UNITS:
            req, rsp = CHANNEL_IDS[unit]
            assert "send(%d," % req in cpu_src
            assert "recv(%d," % rsp in cpu_src

    def test_sw1_keeps_right_channel_filter_on_cpu(self):
        cpu_src, hw_srcs, _ = build_sources("SW+1", SMALL, n_frames=1)
        assert "filter_granule(tr, fifo_r, pcm);" in cpu_src
        assert set(hw_srcs) == {"filter_l"}

    def test_hw_source_server_loop_length(self):
        src = hw_source(SMALL, "imdct_l", n_frames=3)
        assert "it < %d" % (3 * SMALL.n_granules) in src

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            hw_source(SMALL, "fft_l", 1)
        frames = make_frames(SMALL, 1)
        with pytest.raises(ValueError):
            cpu_source(SMALL, frames, {"bogus"})

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_sources("SW+8", SMALL, 1)


class TestFunctionalPipeline:
    def test_decoder_output_deterministic(self):
        image, ir, _ = compile_sw_image(SMALL, n_frames=1, seed=5)
        a = Interpreter(ir).call("main")
        b = Interpreter(ir).call("main")
        assert a == b

    def test_different_seeds_decode_differently(self):
        _, ir_a, _ = compile_sw_image(SMALL, n_frames=1, seed=5)
        _, ir_b, _ = compile_sw_image(SMALL, n_frames=1, seed=6)
        assert Interpreter(ir_a).call("main") != Interpreter(ir_b).call("main")

    def test_all_variants_compute_identical_output(self):
        reference = None
        for variant in ("SW", "SW+1", "SW+2", "SW+4"):
            design, _ = build_design(variant, SMALL, n_frames=1, seed=5)
            result = generate_tlm(design, timed=False).run()
            value = result.process("decoder").return_value
            if reference is None:
                reference = value
            assert value == reference, variant

    def test_output_consumes_every_sample(self):
        # out_samples counts GS per channel per granule; encoded in return.
        image, ir, frames = compile_sw_image(SMALL, n_frames=2, seed=5)
        interp = Interpreter(ir)
        interp.call("main")
        expected_samples = (
            2 * SMALL.n_granules * SMALL.n_channels * SMALL.granule_samples
        )
        assert interp.globals["out_samples"] == expected_samples


class TestDesignConstruction:
    def test_design_shapes(self):
        design, _ = build_design("SW+2", SMALL, n_frames=1)
        assert set(design.pes) == {"cpu", "hw_filter_l", "hw_imdct_l"}
        assert len(design.channels) == 4
        design.validate()

    def test_sw_design_single_pe(self):
        design, _ = build_design("SW", SMALL, n_frames=1)
        assert set(design.pes) == {"cpu"}
        assert design.channels == {}

    def test_cache_sizes_applied(self):
        design, _ = build_design(
            "SW", SMALL, n_frames=1, icache_size=2048, dcache_size=2048
        )
        assert design.pes["cpu"].pum.icache_size == 2048

    def test_frames_returned_match_workload(self):
        _, frames = build_design("SW", SMALL, n_frames=3, seed=9)
        again = make_frames(SMALL, 3, seed=9)
        assert frames.samples == again.samples
        assert frames.modes == again.modes
