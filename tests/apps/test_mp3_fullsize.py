"""The decoder generator also handles *real* MP3 dimensions.

The evaluation uses scaled dimensions for simulation speed; these tests make
sure nothing in the source generator, front-end or estimator breaks at the
standard's true sizes (32 subbands × 18 slots, 16-phase/1024-FIFO synthesis)
— only simulation time, not correctness, motivated the scaling.
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_sources
from repro.cfrontend.semantic import parse_and_analyze
from repro.cdfg.builder import build_program
from repro.estimation import annotate_ir_program
from repro.pum import microblaze

FULL = Mp3Params(n_subbands=32, n_slots=18, n_phases=16, n_alias=8)


@pytest.fixture(scope="module")
def full_ir():
    cpu_src, _, _ = build_sources("SW", FULL, n_frames=1, seed=1)
    program, info = parse_and_analyze(cpu_src)
    return build_program(program, info)


class TestFullSizeDecoder:
    def test_dimensions(self):
        assert FULL.granule_samples == 576  # the real MP3 granule size
        assert FULL.v_size == 64
        assert FULL.fifo_size == 1024

    def test_source_parses_and_lowers(self, full_ir):
        assert "filter_granule" in full_ir.functions
        assert "imdct_granule" in full_ir.functions
        assert full_ir.n_ops > 500

    def test_full_size_annotation(self, full_ir):
        report = annotate_ir_program(full_ir, microblaze())
        assert report.n_blocks == full_ir.n_blocks
        # Annotation stays interactive even at full size (paper: ~1 min for
        # the full toolchain on 2007 hardware; well under that here).
        assert report.seconds < 10.0

    def test_hw_variant_sources_generate(self):
        cpu_src, hw_srcs, _ = build_sources("SW+4", FULL, n_frames=1, seed=1)
        assert len(hw_srcs) == 4
        for src in hw_srcs.values():
            parse_and_analyze(src)
