"""Tests for the small application kernels (DCT, FIR, sort)."""

import pytest

from repro.api import compile_cmini, estimate_function
from repro.apps import dct_source, fir_source, sort_source
from repro.cdfg.interp import run_function
from repro.cycle import run_to_halt
from repro.isa import compile_program
from repro.iss import ISS
from repro.pum import dct_hw, microblaze


@pytest.mark.parametrize("factory", [dct_source, fir_source, sort_source])
class TestKernelBackendsAgree:
    def test_all_backends_equal(self, factory):
        source = factory()
        ir = compile_cmini(source)
        expected = run_function(ir, "main")
        image = compile_program(ir, "main", ())
        assert ISS(image, 2048, 2048).run().return_value == expected
        assert run_to_halt(image, 2048, 2048).return_value == expected

    def test_deterministic_generation(self, factory):
        assert factory() == factory()


class TestKernelContent:
    def test_dct_blocks_parameterised(self):
        ir_small = compile_cmini(dct_source(n_blocks=1))
        ir_big = compile_cmini(dct_source(n_blocks=4))
        small = run_function(ir_small, "main")
        big = run_function(ir_big, "main")
        assert big != small  # more blocks, more accumulated energy

    def test_dct_estimates_on_custom_hw(self):
        # The Fig.-4 scenario: estimate the DCT kernel on the DCT-HW PUM.
        delays = estimate_function(dct_source(), "dct_rows", dct_hw())
        assert all(d >= 0 for d in delays.values())
        assert sum(delays.values()) > 0

    def test_dct_hw_faster_than_cpu_per_block(self):
        source = dct_source()
        hw = estimate_function(source, "dct_rows", dct_hw())
        cpu = estimate_function(source, "dct_rows", microblaze())
        assert sum(hw.values()) < sum(cpu.values())

    def test_fir_filters_signal(self):
        value = run_function(compile_cmini(fir_source()), "main")
        assert value > 0

    def test_fir_different_seeds_differ(self):
        a = run_function(compile_cmini(fir_source(seed=1)), "main")
        b = run_function(compile_cmini(fir_source(seed=2)), "main")
        assert a != b

    def test_sort_verifies_order(self):
        # main returns found*2 + sorted_ok; sorted_ok must be 1.
        value = run_function(compile_cmini(sort_source()), "main")
        assert value % 2 == 1
