"""Tests for the JPEG-style encoder case study."""

from repro.apps.jpeg import build_jpeg_design, cpu_source
from repro.cdfg.interp import Interpreter
from repro.cfrontend.semantic import parse_and_analyze
from repro.cycle import run_pcam
from repro.tlm import generate_tlm
from repro.api import compile_cmini


class TestSources:
    def test_both_variants_analyze(self):
        parse_and_analyze(cpu_source(offload_dct=False))
        parse_and_analyze(cpu_source(offload_dct=True))

    def test_offloaded_cpu_has_no_dct(self):
        src = cpu_source(offload_dct=True)
        assert "dct2d" not in src
        assert "send(30," in src

    def test_deterministic(self):
        assert cpu_source(seed=3) == cpu_source(seed=3)
        assert cpu_source(seed=3) != cpu_source(seed=4)


class TestFunctional:
    def test_sw_encoder_runs(self):
        ir = compile_cmini(cpu_source(n_blocks=2))
        value = Interpreter(ir).call("main")
        assert value > 0

    def test_sw_and_hw_mappings_agree_on_tlm(self):
        sw = generate_tlm(build_jpeg_design(False, n_blocks=2),
                          timed=False).run()
        hw = generate_tlm(build_jpeg_design(True, n_blocks=2),
                          timed=False).run()
        assert (sw.process("encoder").return_value
                == hw.process("encoder").return_value)

    def test_mappings_agree_on_pcam(self):
        sw = run_pcam(build_jpeg_design(False, n_blocks=2))
        hw = run_pcam(build_jpeg_design(True, n_blocks=2))
        assert (sw.pe("encoder").return_value
                == hw.pe("encoder").return_value)

    def test_hw_offload_speeds_up_board(self):
        sw = run_pcam(build_jpeg_design(False, n_blocks=3))
        hw = run_pcam(build_jpeg_design(True, n_blocks=3))
        assert hw.makespan_cycles < sw.makespan_cycles

    def test_tlm_predicts_the_speedup(self):
        sw = generate_tlm(build_jpeg_design(False, n_blocks=3),
                          timed=True).run()
        hw = generate_tlm(build_jpeg_design(True, n_blocks=3),
                          timed=True).run()
        assert hw.makespan_cycles < sw.makespan_cycles

    def test_tlm_estimate_tracks_board_after_calibration(self):
        from repro.calibration import calibrate_pum
        from repro.pum import microblaze

        config = (8 * 1024, 4 * 1024)
        # Calibrate on a different image (seed) — the paper's methodology.
        cal = calibrate_pum(
            microblaze(),
            lambda i, d: build_jpeg_design(
                False, n_blocks=2, seed=77, icache_size=i, dcache_size=d
            ),
            [config],
        )
        for offload in (False, True):
            board = run_pcam(
                build_jpeg_design(offload, n_blocks=2)
            ).makespan_cycles
            estimate = generate_tlm(
                build_jpeg_design(
                    offload, n_blocks=2,
                    memory_model=cal.memory_model,
                    branch_model=cal.branch_model,
                ),
                timed=True,
            ).run().makespan_cycles
            assert abs(estimate - board) / board < 0.25
