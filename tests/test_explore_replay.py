"""explore(replay=...) — the sweep-level trace-replay fast path."""

import pytest

from repro import artifacts
from repro.explore import DesignPoint, explore
from repro.pum import microblaze
from repro.tlm import Design

PRODUCER = """
int buf[16];
int main(void) {
  int s = 0;
  for (int m = 0; m < 3; m++) {
    for (int i = 0; i < 20; i++) s += i * 3;
    send(1, buf, 6);
    recv(2, buf, 2);
  }
  return s;
}"""

CONSUMER = """
int buf[16];
int main(void) {
  int s = 0;
  for (int m = 0; m < 3; m++) {
    recv(1, buf, 6);
    for (int i = 0; i < 9; i++) s += i;
    send(2, buf, 2);
  }
  return s;
}"""


def _platform_point(name, wpc=1, arb=2, mhz=100.0, icache=8192):
    def build():
        design = Design(name)
        design.add_pe("cpu", microblaze(icache, 4096))
        design.add_pe("hw", microblaze(2048, 2048))
        design.add_bus("bus", words_per_cycle=wpc, arbitration_cycles=arb)
        design.add_channel(1, "req", "bus")
        design.add_channel(2, "rsp", "bus")
        design.add_process("prod", PRODUCER, "main", "cpu")
        design.add_process("cons", CONSUMER, "main", "hw")
        design.pes["cpu"].pum.frequency_mhz = mhz
        return design

    return DesignPoint(name, build)


def _platform_sweep():
    return [
        _platform_point("w%d a%d %gMHz" % (w, a, mhz), wpc=w, arb=a, mhz=mhz)
        for w in (1, 2, 4)
        for a in (1, 2)
        for mhz in (100.0, 125.0)
    ]


@pytest.fixture
def fresh_store():
    artifacts.reset_default_store()
    yield
    artifacts.reset_default_store()


class TestReplayAuto:
    def test_auto_matches_off_bit_for_bit(self, fresh_store):
        points = _platform_sweep()
        baseline = explore(points, replay="off")
        artifacts.reset_default_store()
        fast = explore(points, replay="auto")

        assert baseline.replay_stats is None
        stats = fast.replay_stats
        assert stats is not None
        assert stats["mode"] == "auto"
        assert stats["traces_captured"] == 1
        # one kernel run captures, one validates; the rest replay exactly
        assert stats["simulated"] == 2
        assert stats["validated"] == 1
        assert stats["replayed_exact"] == len(points) - 2
        assert stats["replayed_approx"] == 0
        assert stats["fallbacks"] == 0

        for off, auto in zip(baseline.results, fast.results):
            assert auto.ok
            assert auto.makespan_cycles == off.makespan_cycles
            assert auto.per_process_cycles == off.per_process_cycles
        assert ([r.point.name for r in fast.ranked()]
                == [r.point.name for r in baseline.ranked()])
        assert sum(1 for r in fast.results if r.replayed) \
            == stats["replayed_exact"]

    def test_second_sweep_reuses_stored_trace(self, fresh_store):
        points = _platform_sweep()
        first = explore(points, replay="auto")
        assert first.replay_stats["traces_captured"] == 1

        again = explore(points, replay="auto")
        stats = again.replay_stats
        assert stats["traces_captured"] == 0
        assert stats["traces_reused"] == 1
        # with the trace cached, only the validation point simulates
        assert stats["simulated"] == 1
        for a, b in zip(first.results, again.results):
            assert a.makespan_cycles == b.makespan_cycles

    def test_divergence_falls_back_to_simulation(self, fresh_store,
                                                 monkeypatch):
        import repro.simtrace as simtrace

        real_replay_many = simtrace.replay_many

        def corrupted(trace, designs, delay_scales=None, vectorize=True):
            outcomes, stats = real_replay_many(
                trace, designs, delay_scales=delay_scales,
                vectorize=vectorize,
            )
            for outcome in outcomes:
                outcome.makespan_cycles += 1  # poison every replay
            return outcomes, stats

        monkeypatch.setattr(simtrace, "replay_many", corrupted)

        points = _platform_sweep()
        result = explore(points, replay="auto")
        stats = result.replay_stats
        assert stats["fallbacks"] >= 1
        assert stats["replayed_exact"] == 0

        # every point still came back correct via the kernel paths
        monkeypatch.undo()
        artifacts.reset_default_store()
        baseline = explore(points, replay="off")
        for off, fell_back in zip(baseline.results, result.results):
            assert fell_back.ok
            assert fell_back.makespan_cycles == off.makespan_cycles

    def test_replay_plays_with_checkpoints(self, fresh_store, tmp_path):
        points = _platform_sweep()
        ckpt = str(tmp_path / "sweep.ckpt")
        first = explore(points, replay="auto", checkpoint=ckpt)
        assert all(r.ok for r in first.results)

        resumed = explore(points, replay="auto", checkpoint=ckpt)
        # everything was checkpointed, so nothing simulates or replays
        assert all(r.cached for r in resumed.results)
        assert resumed.replay_stats is None or \
            resumed.replay_stats["points"] == 0
        for a, b in zip(first.results, resumed.results):
            assert a.makespan_cycles == b.makespan_cycles

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            explore([_platform_point("p")], replay="always")


class TestReplayApprox:
    def test_approx_groups_across_cache_geometry(self, fresh_store):
        points = [
            _platform_point("i8k", icache=8192),
            _platform_point("i4k", icache=4096),
            _platform_point("i2k", icache=2048),
        ]
        baseline = explore(points, replay="off")
        artifacts.reset_default_store()
        fast = explore(points, replay="approx", replay_validate=0)

        stats = fast.replay_stats
        assert stats["mode"] == "approx"
        assert stats["traces_captured"] == 1
        assert stats["replayed_approx"] == 2
        for off, approx in zip(baseline.results, fast.results):
            assert approx.ok
            span = off.makespan_cycles
            assert abs(approx.makespan_cycles - span) / span < 0.05
