"""The chaos acceptance test (see docs/robustness.md, "Serving").

One real daemon, one deterministic storm: while a 50-request mixed batch
runs from 8 concurrent client threads,

* resident workers are SIGKILLed at least 3 times,
* one on-disk artifact entry has been corrupted,
* the bounded queue (size 4) is flooded so overload shedding fires.

The promises under test: **zero lost well-formed requests** (every request
reaches a final reply; overload/circuit shed replies are structured and
retryable), responses remain **bit-identical** to the one-shot CLI
(modulo the wall-clock figures some subcommands print — those differ
between any two runs of the *same* binary), and ``/stats`` accounts for
the injected damage: worker restarts, crash retries, corrupt artifacts,
overload sheds.
"""

import io
import os
import signal
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.client import ServeClient
from repro.errors import ReproError

from .conftest import SOURCE, mask_walltimes

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="serve daemon needs fork",
)

SECOND_SOURCE = """
int square(int x) { return x * x; }
int main(void) {
  int s = 0;
  for (int i = 0; i < 60; i++) s += square(i);
  return s;
}
"""

BUSY_SOURCE = """
int main(void) {
  int s = 0;
  for (int i = 0; i < 200000; i++) s += i;
  return s;
}
"""

#: Replies a well-behaved client retries: the daemon shed load, it did
#: not lose the request.
RETRYABLE = ("overloaded", "circuit-open")


def _one_shot(cache, kind, argv):
    key = (kind, tuple(argv))
    if key not in cache:
        out = io.StringIO()
        code = cli_main([kind] + list(argv), out=out)
        cache[key] = (code, out.getvalue())
    return cache[key]


def _build_batch(src_a, src_b, busy):
    """50 well-formed requests: mixed kinds, including 4 slow ones that
    occupy workers long enough for the flood to overrun the queue."""
    rotation = [
        ("estimate", [src_a]),
        ("run", [src_b]),
        ("disasm", [src_a]),
        ("pum", ["microblaze"]),
        ("estimate", [src_b]),
        ("run", [src_a]),
    ]
    batch = [rotation[i % len(rotation)] for i in range(46)]
    batch += [("run", [busy])] * 4
    return batch


def test_chaos_storm_loses_nothing(serve_daemon, tmp_path):
    art_dir = tmp_path / "artifacts"
    art_dir.mkdir()
    src_a = tmp_path / "a.cmini"
    src_a.write_text(SOURCE)
    src_b = tmp_path / "b.cmini"
    src_b.write_text(SECOND_SOURCE)
    busy = tmp_path / "busy.cmini"
    busy.write_text(BUSY_SOURCE)

    handle = serve_daemon(
        "--workers", "2", "--queue-size", "4", "--crash-retries", "3",
        "--restart-backoff", "0.05", "--breaker-threshold", "50",
        env={"REPRO_ARTIFACTS_DIR": str(art_dir)},
    )
    address = "unix:" + handle.socket_path

    # Warm the disk store through the daemon, then corrupt one entry.
    # The resident workers are warm now; every worker respawned by the
    # chaos below forks cold, re-reads the disk store, and must detect
    # (and survive) the corruption.
    with ServeClient(address) as client:
        for src in (src_a, src_b):
            warm = client.call("estimate", [str(src)])
            assert warm["ok"] is True and warm["exit_code"] == 0
    on_disk = sorted(art_dir.rglob("*.json"))
    assert on_disk, "warmup should have populated the disk store"
    on_disk[0].write_text("{corrupted-by-chaos-harness")

    expected_cache = {}
    batch = _build_batch(str(src_a), str(src_b), str(busy))
    for kind, argv in batch:
        _one_shot(expected_cache, kind, argv)  # one-shot ground truth

    replies = {}
    errors = []
    lock = threading.Lock()
    pending = list(enumerate(batch))
    shed_seen = 0

    def client_thread():
        nonlocal shed_seen
        with ServeClient(address, timeout=120) as client:
            while True:
                with lock:
                    if not pending:
                        return
                    index, (kind, argv) = pending.pop()
                try:
                    while True:
                        reply = client.call(kind, argv)
                        if (not reply.get("ok")
                                and reply["error"]["code"] in RETRYABLE):
                            with lock:
                                shed_seen += 1
                            time.sleep(0.05)
                            continue
                        break
                except ReproError as exc:  # pragma: no cover - diagnostics
                    with lock:
                        errors.append((index, kind, str(exc)))
                    return
                with lock:
                    replies[index] = (kind, argv, reply)

    def chaos_thread():
        kills = 0
        with ServeClient(address, timeout=120) as client:
            while kills < 3:
                time.sleep(0.6)
                stats = client.stats()
                pids = [w["pid"] for w in stats["pool"]["workers"]
                        if w["alive"]]
                if not pids:
                    continue
                try:
                    os.kill(pids[kills % len(pids)], signal.SIGKILL)
                    kills += 1
                except ProcessLookupError:
                    pass
        return

    workers = [threading.Thread(target=client_thread) for _ in range(8)]
    chaos = threading.Thread(target=chaos_thread)
    for thread in workers:
        thread.start()
    chaos.start()
    for thread in workers:
        thread.join(timeout=600)
    chaos.join(timeout=120)
    assert not any(t.is_alive() for t in workers + [chaos])

    # Zero lost well-formed requests: every one of the 50 got a reply.
    assert not errors, errors
    assert len(replies) == len(batch)

    # Bit-identical to the one-shot CLI.  run/disasm/pum output is fully
    # deterministic and must match byte-for-byte; estimate prints elapsed
    # wall seconds, which differ between ANY two runs, so those figures
    # (and only those) are masked on both sides.
    for index, (kind, argv, reply) in sorted(replies.items()):
        expected_code, expected_output = _one_shot(
            expected_cache, kind, argv,
        )
        assert reply["ok"] is True, (index, kind, reply)
        assert reply["exit_code"] == expected_code, (index, kind)
        if kind == "estimate":
            assert (mask_walltimes(reply["output"])
                    == mask_walltimes(expected_output)), (index, kind)
        else:
            assert reply["output"] == expected_output, (index, kind)

    # Heal: a kill that landed after the batch drained leaves its slot
    # empty until the next request needs it — supervision is on-demand,
    # not a babysitting loop.  A few follow-ups force every slot live.
    with ServeClient(address, timeout=120) as client:
        for _ in range(6):
            assert client.call("pum", ["microblaze"])["ok"] is True
        stats = client.stats()
        health = client.healthz()

    # /stats accounts for the injected damage.
    assert stats["pool"]["restarts"] >= 3          # >= 3 SIGKILLs absorbed
    assert stats["pool"]["retries"] >= 1           # killed mid-request
    assert stats["artifacts"]["corrupt_entries"] >= 1  # corruption seen
    if shed_seen:
        assert stats["requests"]["overloaded"] >= 1
    assert stats["requests"]["ok"] >= len(batch)
    assert health["workers_alive"] == 2            # pool healed fully

    # And after all that, the daemon still drains gracefully.
    code, tail = handle.terminate()
    assert code == 0
    assert "drained" in tail
