"""Shared harness for the serve tests: a real daemon subprocess.

The unit tests drive :class:`~repro.serve.daemon.ServeDaemon` in-process;
the integration and chaos tests want the real thing — ``python -m repro
serve`` as a subprocess, its own interpreter, real forked workers, real
signals.  ``serve_daemon`` hands tests a started daemon and tears it down
with SIGTERM (escalating to SIGKILL only if drain wedges).
"""

import os
import re
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

SOURCE = """
int twice(int x) { return x * 2; }
int main(void) {
  int s = 0;
  for (int i = 0; i < 100; i++) s += twice(i);
  return s;
}
"""

SLOW_SOURCE = """
int main(void) {
  int s = 0;
  for (int i = 0; i < 1000000; i++) s += i;
  return s;
}
"""


def mask_walltimes(text):
    """Normalise the wall-clock figures some subcommands print.

    ``estimate``/``simulate``/``explore`` report elapsed seconds, so even
    two *one-shot* runs differ in those bytes.  Comparisons of served vs
    one-shot output mask them; everything else must match byte-for-byte
    (and kinds with fully deterministic output — ``run``, ``pum``,
    ``disasm`` — are compared unmasked).
    """
    return re.sub(r"\b\d+\.\d+ s\b", "<t> s", text)


class DaemonHandle:
    """One running ``repro serve`` subprocess plus its addresses."""

    def __init__(self, proc, socket_path=None, http_port=None):
        self.proc = proc
        self.socket_path = socket_path
        self.http_port = http_port

    def terminate(self, timeout=30):
        """SIGTERM → graceful drain; returns (exit_code, remaining output)."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            code = self.proc.wait(timeout=10)
        return code, self.proc.stdout.read()


def start_daemon(tmp_path, *extra, socket=True, http=False, env=None,
                 timeout=60):
    """Launch ``python -m repro serve`` and wait for its readiness lines."""
    argv = [sys.executable, "-m", "repro", "serve"]
    socket_path = None
    if socket:
        socket_path = str(tmp_path / "repro.sock")
        argv += ["--socket", socket_path]
    if http:
        argv += ["--http", "0"]
    argv += list(extra)
    full_env = dict(os.environ)
    full_env["PYTHONPATH"] = REPO_SRC
    full_env.update(env or {})
    proc = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=full_env,
    )
    http_port = None
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise RuntimeError(
                "serve daemon exited during startup (code %r)"
                % proc.poll()
            )
        if "listening on http://" in line:
            http_port = int(line.rstrip().rsplit(":", 1)[1])
        if "workers ready" in line:
            return DaemonHandle(proc, socket_path, http_port)
    proc.kill()
    raise RuntimeError("serve daemon did not become ready in %ds" % timeout)


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "app.cmini"
    path.write_text(SOURCE)
    return str(path)


@pytest.fixture()
def serve_daemon(tmp_path):
    handles = []

    def _start(*extra, **kwargs):
        handle = start_daemon(tmp_path, *extra, **kwargs)
        handles.append(handle)
        return handle

    yield _start
    for handle in handles:
        if handle.proc.poll() is None:
            handle.proc.kill()
            handle.proc.wait(timeout=10)
        handle.proc.stdout.close()
