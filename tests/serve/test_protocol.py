"""Wire-protocol unit tests: validation, envelopes, framing."""

import json

import pytest

from repro.errors import ProtocolError, WorkerCrashedError
from repro.serve.protocol import (
    CONTROL_KINDS,
    MAX_REQUEST_BYTES,
    REQUEST_KINDS,
    decode_line,
    encode_line,
    error_reply,
    ok_reply,
    request_id,
    validate_request,
)


class TestValidateRequest:
    def test_minimal_request(self):
        req_id, kind, argv, deadline = validate_request(
            {"id": "r1", "kind": "estimate", "argv": ["app.cmini"]}
        )
        assert (req_id, kind, argv, deadline) == (
            "r1", "estimate", ["app.cmini"], None,
        )

    def test_argv_defaults_empty(self):
        _, _, argv, _ = validate_request({"kind": "stats"})
        assert argv == []

    def test_deadline_coerced_to_float(self):
        *_, deadline = validate_request({"kind": "estimate", "deadline": 3})
        assert deadline == 3.0 and isinstance(deadline, float)

    @pytest.mark.parametrize("bad", [
        [], "estimate", 7, None,
    ])
    def test_non_object_rejected(self, bad):
        with pytest.raises(ProtocolError):
            validate_request(bad)

    def test_unknown_kind_rejected_with_choices(self):
        with pytest.raises(ProtocolError) as exc_info:
            validate_request({"kind": "fry"})
        assert "estimate" in str(exc_info.value)

    @pytest.mark.parametrize("argv", ["x", [1], [None], {"a": 1}])
    def test_bad_argv_rejected(self, argv):
        with pytest.raises(ProtocolError):
            validate_request({"kind": "estimate", "argv": argv})

    @pytest.mark.parametrize("deadline", [0, -1, "5", True])
    def test_bad_deadline_rejected(self, deadline):
        with pytest.raises(ProtocolError):
            validate_request({"kind": "estimate", "deadline": deadline})

    def test_request_kinds_match_cli_surface(self):
        from repro.cli import build_parser

        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        cli_kinds = set(sub.choices)
        # Every servable kind is a real subcommand; the daemon and store
        # administration stay out of the served surface.
        assert REQUEST_KINDS <= cli_kinds
        assert "serve" not in REQUEST_KINDS
        assert "artifacts" not in REQUEST_KINDS
        assert not (REQUEST_KINDS & CONTROL_KINDS)


class TestEnvelopes:
    def test_request_id_echo_safety(self):
        assert request_id({"id": "a"}) == "a"
        assert request_id({"id": 3}) == 3
        assert request_id({"id": ["no"]}) is None
        assert request_id("junk") is None

    def test_ok_reply_merges_payload(self):
        reply = ok_reply("r9", {"exit_code": 0, "output": "hi\n"})
        assert reply == {"id": "r9", "ok": True, "exit_code": 0,
                         "output": "hi\n"}

    def test_error_reply_carries_taxonomy(self):
        reply = error_reply("r9", WorkerCrashedError("boom"))
        assert reply["ok"] is False
        assert reply["error"]["code"] == "worker-crashed"
        assert reply["error"]["exit_code"] == 5


class TestFraming:
    def test_roundtrip(self):
        obj = {"id": "r1", "kind": "estimate", "argv": ["a", "b"]}
        assert decode_line(encode_line(obj)) == obj

    def test_encode_is_one_sorted_line(self):
        raw = encode_line({"b": 1, "a": 2})
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        assert raw.index(b'"a"') < raw.index(b'"b"')

    def test_junk_rejected(self):
        with pytest.raises(ProtocolError):
            decode_line(b"{nope\n")

    def test_oversized_rejected(self):
        huge = json.dumps({"kind": "x" * MAX_REQUEST_BYTES}).encode()
        with pytest.raises(ProtocolError):
            decode_line(huge)
