"""Circuit-breaker state machine, driven by an injected clock."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make(threshold=3, cooldown=10.0):
    clock = Clock()
    return CircuitBreaker(threshold=threshold, cooldown=cooldown,
                          clock=clock), clock


class TestClosed:
    def test_allows_and_stays_closed_under_successes(self):
        breaker, _ = make()
        for _ in range(50):
            assert breaker.allow()
            breaker.record_success()
        assert breaker.state == CLOSED

    def test_failures_must_be_consecutive(self):
        breaker, _ = make(threshold=3)
        for _ in range(10):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # resets the streak
        assert breaker.state == CLOSED

    def test_threshold_consecutive_failures_open(self):
        breaker, _ = make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opened_count == 1


class TestOpen:
    def test_sheds_until_cooldown(self):
        breaker, clock = make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.shed_count == 2
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()  # the caller's request is the trial
        assert breaker.state == HALF_OPEN


class TestHalfOpen:
    def test_single_trial_at_a_time(self):
        breaker, clock = make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        assert not breaker.allow()  # trial in flight

    def test_trial_success_closes(self):
        breaker, clock = make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trial_failure_reopens_for_full_cooldown(self):
        breaker, clock = make(threshold=5, cooldown=1.0)
        for _ in range(5):
            breaker.record_failure()
        clock.now = 1.0
        assert breaker.allow()
        breaker.record_failure()  # one half-open failure re-opens
        assert breaker.state == OPEN
        assert breaker.opened_count == 2
        clock.now = 1.5
        assert not breaker.allow()
        clock.now = 2.0
        assert breaker.allow()


class TestValidationAndStats:
    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0}, {"cooldown": 0.0}, {"cooldown": -1.0},
    ])
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)

    def test_as_dict(self):
        breaker, _ = make(threshold=2)
        breaker.record_failure()
        snapshot = breaker.as_dict()
        assert snapshot == {"state": CLOSED, "consecutive_failures": 1,
                            "opened": 0, "shed": 0}
