"""Supervised worker-pool tests: real forked workers, real SIGKILL.

The pool promises: every submitted request resolves to a reply dict (never
a raised exception, never a hang); a crashed worker costs a retry, not the
request; a blown deadline is reported as the watchdog's wall-clock error;
and counters account for every one of those events.
"""

import io
import os
import signal
import time

import pytest

from repro.cli import main as cli_main
from repro.serve.pool import WorkerPool

from .conftest import SLOW_SOURCE, SOURCE, mask_walltimes

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="worker pool needs fork",
)


@pytest.fixture()
def pool():
    active = []

    def _start(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("restart_backoff", 0.01)
        instance = WorkerPool(**kwargs)
        instance.start()
        active.append(instance)
        return instance

    yield _start
    for instance in active:
        instance.stop()


@pytest.fixture()
def slow_file(tmp_path):
    path = tmp_path / "slow.cmini"
    path.write_text(SLOW_SOURCE)
    return str(path)


def test_served_reply_is_bit_identical_to_cli(pool, source_file):
    reply = pool().submit("estimate", [source_file]).result(timeout=60)
    assert reply["ok"] is True
    out = io.StringIO()
    code = cli_main(["estimate", source_file], out=out)
    assert reply["exit_code"] == code == 0
    # estimate prints elapsed wall seconds, which differ between ANY two
    # runs; everything else must match byte-for-byte.
    assert mask_walltimes(reply["output"]) == mask_walltimes(out.getvalue())


def test_cli_errors_are_executions_not_serve_failures(
        pool, source_file, tmp_path):
    bad_pum = tmp_path / "bad_pum.json"
    bad_pum.write_text("{not json")
    reply = pool().submit(
        "estimate", [source_file, "--pum-json", str(bad_pum)],
    ).result(timeout=60)
    assert reply["ok"] is True  # it *executed*; the CLI result is the answer
    assert reply["exit_code"] == 2
    assert "error:" in reply["output"]


def test_unstructured_crashes_become_internal_errors(pool):
    # The one-shot CLI propagates a missing source file as a raw
    # FileNotFoundError (a bug-shaped failure); served, that surfaces as
    # a structured internal error instead of killing the worker.
    instance = pool()
    reply = instance.submit(
        "estimate", ["/nonexistent/app.cmini"],
    ).result(timeout=60)
    assert reply["ok"] is False
    assert reply["error"]["code"] == "internal"
    assert reply["error"]["exit_code"] == 1
    # ...and the worker survived to serve the next request.
    follow_up = instance.submit("pum", ["microblaze"]).result(timeout=60)
    assert follow_up["ok"] is True
    assert instance.stats()["restarts"] == 0


def test_workers_are_resident(pool, source_file):
    instance = pool(workers=1)
    first = pool_pids = None
    for _ in range(3):
        reply = instance.submit("estimate", [source_file]).result(timeout=60)
        assert reply["ok"]
        pool_pids = instance.worker_pids()
        if first is None:
            first = pool_pids
    assert pool_pids == first  # same process served all three
    assert instance.stats()["served"] == 3
    assert instance.stats()["restarts"] == 0


def test_sigkill_mid_request_is_retried(pool, slow_file):
    instance = pool(workers=1, crash_retries=2)
    future = instance.submit("run", [slow_file])
    time.sleep(0.5)  # let the worker get into the request
    victim = instance.worker_pids()[0]
    os.kill(victim, signal.SIGKILL)
    reply = future.result(timeout=120)
    assert reply["ok"] is True  # retried on a fresh worker, zero lost
    assert reply["exit_code"] == 0
    stats = instance.stats()
    assert stats["retries"] >= 1
    assert stats["restarts"] >= 1
    assert instance.worker_pids() and instance.worker_pids()[0] != victim


def test_crash_budget_exhaustion_fails_structurally(pool, slow_file):
    instance = pool(workers=1, crash_retries=1)
    future = instance.submit("run", [slow_file])
    # Kill every worker that picks the request up, beyond the budget.
    deadline = time.monotonic() + 120
    while not future.done() and time.monotonic() < deadline:
        pids = instance.worker_pids()
        if pids:
            try:
                os.kill(pids[0], signal.SIGKILL)
            except ProcessLookupError:
                pass
        time.sleep(0.4)
    reply = future.result(timeout=10)
    assert reply["ok"] is False
    assert reply["error"]["code"] == "worker-crashed"
    assert reply["error"]["exit_code"] == 5
    assert instance.stats()["crash_failures"] == 1


def test_deadline_reported_as_wall_clock_exceeded(pool, slow_file):
    instance = pool(workers=1)
    reply = instance.submit("run", [slow_file], deadline=0.3).result(
        timeout=60,
    )
    assert reply["ok"] is False
    assert reply["error"]["code"] == "wall-clock-exceeded"
    assert reply["error"]["exit_code"] == 3  # the watchdog convention
    # The SIGALRM path caught it inside the worker: no kill needed, and
    # the same worker keeps serving.
    assert instance.stats()["deadline_kills"] == 0
    follow_up = instance.submit("pum", ["microblaze"]).result(timeout=60)
    assert follow_up["ok"] is True


def test_idle_worker_death_is_absorbed(pool, source_file):
    instance = pool(workers=1)
    warm = instance.submit("estimate", [source_file]).result(timeout=60)
    assert warm["ok"]
    os.kill(instance.worker_pids()[0], signal.SIGKILL)
    time.sleep(0.2)
    reply = instance.submit("estimate", [source_file]).result(timeout=60)
    assert reply["ok"] is True
    assert mask_walltimes(reply["output"]) == mask_walltimes(warm["output"])


def test_stop_fails_pending_requests_instead_of_hanging(slow_file):
    instance = WorkerPool(workers=1, restart_backoff=0.01)
    instance.start()
    blocker = instance.submit("run", [slow_file])
    queued = [instance.submit("pum", ["microblaze"]) for _ in range(3)]
    time.sleep(0.3)
    instance.stop()
    for future in [blocker] + queued:
        reply = future.result(timeout=10)  # resolved, not abandoned
        assert isinstance(reply, dict)
