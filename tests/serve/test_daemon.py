"""ServeDaemon tests: admission control in-process, real service end-to-end.

The unit half drives :meth:`ServeDaemon.handle_request` directly with a
fake pool, so backpressure, breaker gating and counter bookkeeping are
tested deterministically.  The integration half runs ``python -m repro
serve`` as a real subprocess (see conftest) and checks the full promise:
served responses bit-identical to the one-shot CLI, working ``--server``
glue, HTTP endpoints, graceful drain.
"""

import asyncio
import concurrent.futures
import io
import json
import signal

import pytest

from repro.cli import main as cli_main
from repro.client import ServeClient, parse_address, run_via_server
from repro.errors import ServeError, error_to_json, WorkerCrashedError
from repro.serve.daemon import ServeDaemon


class FakePool:
    """Duck-typed WorkerPool: scripted replies, optional gating."""

    def __init__(self, replies=None):
        self.replies = list(replies or [])
        self.calls = []
        self.gate = None  # when set, futures resolve on release()
        self._pending = []

    def submit(self, kind, argv, deadline=None):
        self.calls.append((kind, list(argv), deadline))
        future = concurrent.futures.Future()
        reply = (
            self.replies.pop(0) if self.replies
            else {"ok": True, "exit_code": 0, "output": "",
                  "wall_seconds": 0.0, "corrupt_delta": 0}
        )
        if self.gate:
            self._pending.append((future, reply))
        else:
            future.set_result(reply)
        return future

    def release(self):
        for future, reply in self._pending:
            future.set_result(reply)
        self._pending = []

    def stats(self):
        return {"served": len(self.calls), "retries": 0, "restarts": 0,
                "deadline_kills": 0, "crash_failures": 0, "workers": []}

    def worker_pids(self):
        return [4242]

    def start(self):
        return self

    def stop(self):
        pass


def make_daemon(**kwargs):
    kwargs.setdefault("socket_path", "/tmp/unused.sock")
    daemon = ServeDaemon(**kwargs)
    daemon.pool = FakePool()
    return daemon


def run(coro):
    return asyncio.run(coro)


class TestConstruction:
    def test_needs_an_endpoint(self):
        with pytest.raises(ValueError):
            ServeDaemon()

    def test_queue_size_must_be_positive(self):
        with pytest.raises(ValueError):
            ServeDaemon(socket_path="/tmp/x.sock", queue_size=0)


class TestDispatch:
    def test_ok_reply_mirrors_worker_payload(self):
        daemon = make_daemon()
        daemon.pool.replies = [{"ok": True, "exit_code": 0,
                                "output": "42\n", "wall_seconds": 0.01,
                                "corrupt_delta": 0}]
        reply = run(daemon.handle_request(
            {"id": "r1", "kind": "estimate", "argv": ["app.cmini"]}
        ))
        assert reply["id"] == "r1" and reply["ok"] is True
        assert reply["output"] == "42\n" and reply["exit_code"] == 0
        assert "corrupt_delta" not in reply  # daemon-internal bookkeeping
        assert daemon.pool.calls == [("estimate", ["app.cmini"], None)]
        assert daemon.counters["ok"] == 1

    def test_bad_request_never_reaches_the_pool(self):
        daemon = make_daemon()
        reply = run(daemon.handle_request({"id": 7, "kind": "frobnicate"}))
        assert reply["ok"] is False
        assert reply["id"] == 7  # echo-safe ids come back even on junk
        assert reply["error"]["code"] == "bad-request"
        assert daemon.pool.calls == []
        assert daemon.counters["bad_request"] == 1

    def test_control_kinds_answered_in_daemon(self):
        daemon = make_daemon()
        reply = run(daemon.handle_request({"id": "s", "kind": "stats"}))
        assert reply["ok"] and "stats" in reply
        assert reply["stats"]["queue"]["capacity"] == daemon.queue_size
        assert daemon.pool.calls == []

    def test_default_deadline_applied(self):
        daemon = make_daemon(deadline=7.5)
        run(daemon.handle_request({"kind": "estimate", "argv": []}))
        assert daemon.pool.calls[0][2] == 7.5
        run(daemon.handle_request(
            {"kind": "estimate", "argv": [], "deadline": 1.0}
        ))
        assert daemon.pool.calls[1][2] == 1.0  # per-request wins

    def test_corrupt_delta_aggregates_into_stats(self):
        daemon = make_daemon()
        daemon.pool.replies = [
            {"ok": True, "exit_code": 0, "output": "", "wall_seconds": 0,
             "corrupt_delta": 2},
            {"ok": True, "exit_code": 0, "output": "", "wall_seconds": 0,
             "corrupt_delta": 1},
        ]
        run(daemon.handle_request({"kind": "estimate", "argv": []}))
        run(daemon.handle_request({"kind": "estimate", "argv": []}))
        assert daemon.stats()["artifacts"]["corrupt_entries"] == 3


class TestBackpressure:
    def test_queue_full_sheds_with_overloaded(self):
        daemon = make_daemon(queue_size=1)
        daemon.pool.gate = True

        async def scenario():
            first = asyncio.ensure_future(daemon.handle_request(
                {"id": "a", "kind": "estimate", "argv": []}
            ))
            await asyncio.sleep(0)  # let it occupy the queue slot
            second = await daemon.handle_request(
                {"id": "b", "kind": "estimate", "argv": []}
            )
            daemon.pool.release()
            return await first, second

        first, second = run(scenario())
        assert first["ok"] is True
        assert second["ok"] is False
        assert second["error"]["code"] == "overloaded"
        assert second["error"]["exit_code"] == 5
        assert daemon.counters["overloaded"] == 1
        assert daemon.counters["queue_high_water"] == 1

    def test_draining_daemon_sheds(self):
        daemon = make_daemon()
        daemon._draining = True
        reply = run(daemon.handle_request(
            {"id": "x", "kind": "estimate", "argv": []}
        ))
        assert reply["error"]["code"] == "overloaded"
        assert "draining" in reply["error"]["message"]


class TestBreakerGating:
    def crash_reply(self):
        return {"ok": False,
                "error": error_to_json(WorkerCrashedError("boom"))}

    def test_repeated_serve_failures_open_the_kinds_breaker(self):
        daemon = make_daemon(breaker_threshold=2)
        daemon.pool.replies = [self.crash_reply(), self.crash_reply()]
        for _ in range(2):
            reply = run(daemon.handle_request(
                {"kind": "estimate", "argv": []}
            ))
            assert reply["error"]["code"] == "worker-crashed"
        shed = run(daemon.handle_request({"kind": "estimate", "argv": []}))
        assert shed["error"]["code"] == "circuit-open"
        assert len(daemon.pool.calls) == 2  # the shed never dispatched
        assert daemon.counters["circuit_open"] == 1
        assert daemon.stats()["breakers"]["estimate"]["state"] == "open"

    def test_breakers_are_per_kind(self):
        daemon = make_daemon(breaker_threshold=1)
        daemon.pool.replies = [self.crash_reply()]
        run(daemon.handle_request({"kind": "estimate", "argv": []}))
        reply = run(daemon.handle_request({"kind": "pum", "argv": ["x"]}))
        assert reply["ok"] is True  # pum's breaker is untouched

    def test_cli_level_failures_do_not_trip_the_breaker(self):
        daemon = make_daemon(breaker_threshold=1)
        # exit_code 2 executions are answers, not serve failures.
        daemon.pool.replies = [
            {"ok": True, "exit_code": 2, "output": "error: bad pum\n",
             "wall_seconds": 0, "corrupt_delta": 0},
        ] * 3
        for _ in range(3):
            reply = run(daemon.handle_request(
                {"kind": "estimate", "argv": []}
            ))
            assert reply["ok"] is True
        assert daemon.stats()["breakers"]["estimate"]["state"] == "closed"


class TestClientAddressParsing:
    def test_forms(self):
        assert parse_address("unix:/tmp/s.sock") == ("unix", "/tmp/s.sock")
        assert parse_address("/tmp/s.sock") == ("unix", "/tmp/s.sock")
        assert parse_address("http://127.0.0.1:8123") == (
            "http", ("127.0.0.1", 8123),
        )
        assert parse_address("localhost:8123") == (
            "http", ("localhost", 8123),
        )

    def test_junk_rejected(self):
        with pytest.raises(ServeError):
            parse_address("not-an-address")


class TestServedEndToEnd:
    def test_socket_serves_bit_identical_output(self, serve_daemon,
                                                source_file):
        handle = serve_daemon()
        expected = io.StringIO()
        expected_code = cli_main(["run", source_file], out=expected)
        with ServeClient("unix:" + handle.socket_path) as client:
            reply = client.call("run", [source_file])
        assert reply["ok"] is True
        assert reply["exit_code"] == expected_code
        assert reply["output"] == expected.getvalue()

    def test_timed_output_identical_modulo_walltimes(self, serve_daemon,
                                                     source_file):
        from .conftest import mask_walltimes

        handle = serve_daemon()
        expected = io.StringIO()
        expected_code = cli_main(["estimate", source_file], out=expected)
        with ServeClient("unix:" + handle.socket_path) as client:
            reply = client.call("estimate", [source_file])
        assert reply["ok"] is True
        assert reply["exit_code"] == expected_code
        # estimate prints elapsed seconds (differs between any two runs);
        # everything else must match byte-for-byte.
        assert (mask_walltimes(reply["output"])
                == mask_walltimes(expected.getvalue()))

    def test_cli_server_flag_round_trips(self, serve_daemon, source_file):
        handle = serve_daemon()
        expected = io.StringIO()
        cli_main(["run", source_file], out=expected)
        routed = io.StringIO()
        code = cli_main(
            ["run", source_file, "--server",
             "unix:" + handle.socket_path],
            out=routed,
        )
        assert code == 0
        assert routed.getvalue() == expected.getvalue()

    def test_server_flag_unreachable_daemon_is_structured(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            ["estimate", "x.cmini",
             "--server", "unix:%s" % (tmp_path / "nope.sock")],
            out=out,
        )
        assert code == 5
        assert out.getvalue().startswith("server error: [serve]")

    def test_http_endpoints(self, serve_daemon, source_file):
        handle = serve_daemon(socket=False, http=True)
        address = "http://127.0.0.1:%d" % handle.http_port
        with ServeClient(address) as client:
            health = client.healthz()
            assert health["status"] == "ok"
            assert health["workers_alive"] == 2
            reply = client.call("estimate", [source_file])
            assert reply["ok"] is True and reply["exit_code"] == 0
            stats = client.stats()
        assert stats["requests"]["total"] >= 1
        assert stats["queue"]["capacity"] == 16

    def test_http_status_codes(self, serve_daemon):
        import http.client

        handle = serve_daemon(socket=False, http=True)
        conn = http.client.HTTPConnection("127.0.0.1", handle.http_port,
                                          timeout=30)
        try:
            conn.request("POST", "/rpc", body=b'{"kind": "frobnicate"}')
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 400
            assert body["error"]["code"] == "bad-request"
        finally:
            conn.close()

    def test_malformed_socket_line_gets_error_reply_not_hangup(
            self, serve_daemon, source_file):
        import socket as socket_mod

        handle = serve_daemon()
        sock = socket_mod.socket(socket_mod.AF_UNIX,
                                 socket_mod.SOCK_STREAM)
        sock.settimeout(30)
        sock.connect(handle.socket_path)
        stream = sock.makefile("rwb")
        try:
            stream.write(b"this is not json\n")
            stream.flush()
            error_line = json.loads(stream.readline())
            assert error_line["ok"] is False
            assert error_line["error"]["code"] == "bad-request"
            # The connection survives for well-formed follow-ups.
            stream.write(json.dumps(
                {"id": "ok", "kind": "estimate", "argv": [source_file]}
            ).encode() + b"\n")
            stream.flush()
            good = json.loads(stream.readline())
            assert good["id"] == "ok" and good["ok"] is True
        finally:
            stream.close()
            sock.close()

    def test_sigterm_drains_gracefully(self, serve_daemon, source_file):
        handle = serve_daemon()
        with ServeClient("unix:" + handle.socket_path) as client:
            assert client.call("estimate", [source_file])["ok"]
        code, tail = handle.terminate()
        assert code == 0
        assert "draining" in tail
        assert "drained" in tail

    def test_stats_reports_resident_workers(self, serve_daemon,
                                            source_file):
        handle = serve_daemon("--workers", "2")
        with ServeClient("unix:" + handle.socket_path) as client:
            for _ in range(3):
                assert client.call("estimate", [source_file])["ok"]
            stats = client.stats()
        workers = stats["pool"]["workers"]
        assert len(workers) == 2
        assert all(w["alive"] for w in workers)
        assert sum(w["served"] for w in workers) >= 3
        assert stats["pool"]["restarts"] == 0


class TestSimulationStats:
    """Aggregated kernel/contention totals from worker sim deltas."""

    REPLY = {"ok": True, "exit_code": 0, "output": "", "wall_seconds": 0.0,
             "corrupt_delta": 0}

    def _reply(self, **sim_delta):
        reply = dict(self.REPLY)
        reply["sim_delta"] = sim_delta
        return reply

    def test_deltas_accumulate_across_requests(self):
        daemon = make_daemon()
        daemon.pool.replies = [
            self._reply(runs=1, events_scheduled=100, activations=90,
                        wall_seconds=0.5, bus_stall_cycles=7),
            self._reply(runs=1, events_scheduled=300, activations=250,
                        wall_seconds=0.5, bus_stall_cycles=3),
        ]
        for index in range(2):
            reply = run(daemon.handle_request(
                {"id": "r%d" % index, "kind": "estimate", "argv": ["x"]}
            ))
            assert reply["ok"]
            # The delta is daemon bookkeeping, never echoed to clients.
            assert "sim_delta" not in reply
        stats = run(daemon.handle_request(
            {"id": "s", "kind": "stats"}))["stats"]["simulation"]
        assert stats["runs"] == 2
        assert stats["events_scheduled"] == 400
        assert stats["activations"] == 340
        assert stats["bus_stall_cycles"] == 10
        assert stats["events_per_second"] == pytest.approx(400.0)

    def test_replies_without_delta_leave_totals_untouched(self):
        daemon = make_daemon()  # FakePool default reply has no sim_delta
        assert run(daemon.handle_request(
            {"id": "r", "kind": "estimate", "argv": ["x"]}))["ok"]
        stats = run(daemon.handle_request(
            {"id": "s", "kind": "stats"}))["stats"]["simulation"]
        assert stats == {"events_per_second": 0.0}

    def test_real_workers_report_simulation_totals(self, serve_daemon,
                                                   tmp_path):
        # ``estimate`` is static analysis; only a simulating kind (``tlm``)
        # moves the kernel totals.
        from repro.apps.mp3 import Mp3Params, build_design
        from repro.tlm import save_design

        small = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)
        design, _ = build_design("SW+1", small, n_frames=1, seed=3)
        design_path = tmp_path / "design.json"
        save_design(design, str(design_path))
        handle = serve_daemon()
        with ServeClient("unix:" + handle.socket_path) as client:
            assert client.call("tlm", [str(design_path)])["ok"]
            stats = client.stats()
        sim = stats["simulation"]
        assert sim["runs"] >= 1
        assert sim["events_scheduled"] > 0
        assert sim["wall_seconds"] > 0
