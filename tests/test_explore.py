"""Tests for the design-space exploration helper."""

import pytest

from repro.apps.mp3 import Mp3Params
from repro.explore import DesignPoint, explore, mp3_design_points
from repro.pum import microblaze
from repro.tlm import Design

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _loop_design(n_iters, name):
    def build():
        design = Design(name)
        design.add_pe("cpu", microblaze(8192, 4096))
        design.add_process("p", """
        int main(void) {
          int s = 0;
          for (int i = 0; i < %d; i++) s += i * 3;
          return s;
        }""" % n_iters, "main", "cpu")
        return design

    return build


class TestExplore:
    def test_evaluates_all_points(self):
        points = [
            DesignPoint("small", _loop_design(50, "small"), area=1),
            DesignPoint("large", _loop_design(500, "large"), area=1),
        ]
        result = explore(points)
        assert len(result) == 2
        assert result.total_seconds > 0

    def test_ranking_by_makespan(self):
        points = [
            DesignPoint("large", _loop_design(500, "large")),
            DesignPoint("small", _loop_design(50, "small")),
        ]
        ranked = explore(points).ranked()
        assert [r.point.name for r in ranked] == ["small", "large"]

    def test_best_with_constraint(self):
        points = [
            DesignPoint("cheap-slow", _loop_design(500, "a"), area=0),
            DesignPoint("pricey-fast", _loop_design(50, "b"), area=4),
        ]
        result = explore(points)
        unconstrained = result.best()
        assert unconstrained.point.name == "pricey-fast"
        budgeted = result.best(constraint=lambda r: r.point.area <= 1)
        assert budgeted.point.name == "cheap-slow"
        impossible = result.best(constraint=lambda r: r.makespan_cycles < 1)
        assert impossible is None

    def test_custom_objective(self):
        points = [
            DesignPoint("a", _loop_design(100, "a"), area=5),
            DesignPoint("b", _loop_design(120, "b"), area=1),
        ]
        result = explore(points)
        by_area = result.ranked(objective=lambda r: r.point.area)
        assert by_area[0].point.name == "b"

    def test_ranked_breaks_ties_by_input_index(self):
        from repro.explore import ExplorationResult, PointResult

        points = [DesignPoint(name, _loop_design(10, name))
                  for name in ("a", "b", "c")]
        # Results permuted relative to input order (as a checkpoint
        # restore or replay fill may produce), all tied on the objective.
        results = [
            PointResult(points[2], makespan_cycles=100, index=2),
            PointResult(points[0], makespan_cycles=100, index=0),
            PointResult(points[1], makespan_cycles=100, index=1),
        ]
        ranked = ExplorationResult(results, 0.0).ranked()
        assert [r.point.name for r in ranked] == ["a", "b", "c"]
        # Legacy results without an index keep list order on ties.
        legacy = [PointResult(p, makespan_cycles=7) for p in points]
        ranked = ExplorationResult(legacy, 0.0).ranked()
        assert [r.point.name for r in ranked] == ["a", "b", "c"]

    def test_pareto_front_breaks_ties_by_input_index(self):
        from repro.explore import ExplorationResult, PointResult

        points = [DesignPoint(name, _loop_design(10, name), area=2)
                  for name in ("a", "b", "c")]
        # All tied on both objectives, results permuted relative to input
        # order (as a checkpoint restore or replay fill may produce): the
        # front must order by input index, like ranked() does.
        results = [
            PointResult(points[2], makespan_cycles=100, index=2),
            PointResult(points[0], makespan_cycles=100, index=0),
            PointResult(points[1], makespan_cycles=100, index=1),
        ]
        front = ExplorationResult(results, 0.0).pareto_front()
        assert [r.point.name for r in front] == ["a", "b", "c"]
        # Legacy results without an index keep list order on ties.
        legacy = [PointResult(p, makespan_cycles=7) for p in points]
        front = ExplorationResult(legacy, 0.0).pareto_front()
        assert [r.point.name for r in front] == ["a", "b", "c"]

    def test_pareto_front(self):
        points = [
            DesignPoint("dominated", _loop_design(500, "x"), area=4),
            DesignPoint("fast", _loop_design(50, "y"), area=4),
            DesignPoint("cheap", _loop_design(500, "z"), area=0),
        ]
        front = explore(points).pareto_front()
        names = {r.point.name for r in front}
        assert names == {"fast", "cheap"}


class TestParallelExplore:
    def _points(self):
        return [
            DesignPoint("large", _loop_design(400, "large"), area=2),
            DesignPoint("small", _loop_design(40, "small"), area=1),
            DesignPoint("medium", _loop_design(150, "medium"), area=1),
        ]

    def test_parallel_matches_sequential(self):
        sequential = explore(self._points(), workers=1)
        parallel = explore(self._points(), workers=3)
        assert parallel.workers in (1, 3)  # 1 only on fork-less platforms
        assert (
            [(r.point.name, r.makespan_cycles) for r in sequential.results]
            == [(r.point.name, r.makespan_cycles) for r in parallel.results]
        )
        assert (
            [r.point.name for r in sequential.ranked()]
            == [r.point.name for r in parallel.ranked()]
        )

    def test_parallel_results_keep_input_order(self):
        result = explore(self._points(), workers=2)
        assert [r.point.name for r in result.results] == [
            "large", "small", "medium",
        ]
        assert all(r.makespan_cycles > 0 for r in result.results)
        assert all(r.per_process_cycles for r in result.results)

    def test_workers_capped_by_point_count(self):
        result = explore(self._points()[:2], workers=16)
        assert len(result) == 2

    def test_sequential_keeps_tlm_result(self):
        sequential = explore(self._points()[:1], workers=1)
        assert sequential.results[0].tlm_result is not None
        assert sequential.workers == 1


class TestMp3Points:
    def test_point_grid(self):
        points = mp3_design_points(
            SMALL, n_frames=1,
            cache_configs=((2048, 2048), (8192, 4096)),
        )
        assert len(points) == 8
        areas = {p.meta["variant"]: p.area for p in points}
        assert areas == {"SW": 0, "SW+1": 1, "SW+2": 2, "SW+4": 4}

    def test_exploration_finds_hw_wins(self):
        points = mp3_design_points(SMALL, n_frames=1)
        result = explore(points)
        ranked = result.ranked()
        # The all-HW mapping wins; the all-SW mapping loses.
        assert ranked[0].point.meta["variant"] == "SW+4"
        assert ranked[-1].point.meta["variant"] == "SW"

    def test_pareto_contains_extremes(self):
        points = mp3_design_points(SMALL, n_frames=1)
        front = explore(points).pareto_front()
        variants = {r.point.meta["variant"] for r in front}
        assert "SW" in variants      # cheapest
        assert "SW+4" in variants    # fastest


class TestGenerationSummaries:
    def _points(self):
        return [
            DesignPoint("a", _loop_design(60, "a"), area=1),
            DesignPoint("b", _loop_design(90, "b"), area=1),
            DesignPoint("c", _loop_design(120, "c"), area=1),
        ]

    def test_sequential_points_carry_generation_summaries(self):
        result = explore(self._points(), workers=1)
        for r in result.results:
            assert r.generation is not None
            assert set(r.generation["stage_seconds"]) == {
                "frontend", "annotate", "codegen",
            }
        summary = result.generation_summary()
        assert summary["points"] == 3
        assert summary["total_seconds"] > 0

    def test_parallel_points_carry_generation_summaries(self):
        # The satellite fix: workers used to drop the GenerationReport
        # entirely; the compact summary must now survive the pool.
        result = explore(self._points(), workers=2)
        if result.workers == 1:
            pytest.skip("no fork support on this platform")
        for r in result.results:
            assert r.generation is not None
        summary = result.generation_summary()
        assert summary["points"] == 3
        for stage in ("frontend", "annotate", "codegen"):
            lookups = (summary["stage_hits"][stage]
                       + summary["stage_misses"][stage])
            assert lookups >= 3

    def test_parallel_workers_hit_prewarmed_store(self):
        from repro import artifacts

        artifacts.reset_default_store()
        try:
            result = explore(self._points(), workers=2)
            if result.workers == 1:
                pytest.skip("no fork support on this platform")
            summary = result.generation_summary()
            # The parent pre-warms every stage before the fork, so workers
            # only ever look artifacts up.
            for stage in ("frontend", "annotate", "codegen"):
                assert summary["stage_misses"][stage] == 0
                assert summary["stage_hits"][stage] >= 3
        finally:
            artifacts.reset_default_store()

    def test_checkpoint_restored_points_contribute_nothing(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        explore(self._points(), checkpoint=path)
        rerun = explore(self._points(), checkpoint=path)
        assert all(r.cached for r in rerun.results)
        assert all(r.generation is None for r in rerun.results)
        assert rerun.generation_summary()["points"] == 0
