"""Tests for the estimation-driven profiler."""

from repro.api import compile_cmini
from repro.estimation import profile_program
from repro.pum import microblaze

SRC = """
int cheap(int x) { return x + 1; }
int expensive(int x) {
  int s = 0;
  for (int i = 0; i < 200; i++) s += (x + i) * (x - i);
  return s;
}
int never(int x) { return x * 99; }
int main(void) {
  int acc = 0;
  for (int r = 0; r < 5; r++) {
    acc += cheap(r);
    acc += expensive(r);
  }
  return acc;
}
"""


def make_profile():
    return profile_program(compile_cmini(SRC), microblaze())


class TestAttribution:
    def test_total_is_sum_of_functions(self):
        profile = make_profile()
        assert profile.total_cycles == sum(
            f.cycles for f in profile.functions.values()
        )
        assert profile.total_cycles > 0

    def test_expensive_dominates(self):
        profile = make_profile()
        ranked = profile.hottest_functions()
        assert ranked[0].name == "expensive"
        assert profile.share_of("expensive") > 0.8

    def test_uncalled_function_has_zero_cycles(self):
        profile = make_profile()
        assert profile.functions["never"].cycles == 0

    def test_block_cycles_are_count_times_delay(self):
        profile = make_profile()
        for fp in profile.functions.values():
            for bp in fp.blocks:
                assert bp.cycles == bp.executions * bp.delay

    def test_hottest_blocks_sorted_and_capped(self):
        profile = make_profile()
        top = profile.hottest_blocks(3)
        assert len(top) == 3
        assert top[0].cycles >= top[1].cycles >= top[2].cycles
        # The hottest block belongs to the hottest function's loop.
        assert top[0].func_name == "expensive"

    def test_render_readable(self):
        text = make_profile().render(top=4)
        assert "expensive" in text
        assert "hottest blocks" in text
        assert "%" in text

    def test_entry_args_forwarded(self):
        profile = profile_program(
            compile_cmini("int main(int n) { int s = 0; "
                          "for (int i = 0; i < n; i++) s += i; return s; }"),
            microblaze(), args=(50,),
        )
        small = profile_program(
            compile_cmini("int main(int n) { int s = 0; "
                          "for (int i = 0; i < n; i++) s += i; return s; }"),
            microblaze(), args=(5,),
        )
        assert profile.total_cycles > small.total_cycles

    def test_mp3_profile_surfaces_filter_and_imdct(self):
        """The profiler identifies the paper's offload candidates."""
        from repro.apps.mp3 import Mp3Params, build_sources

        params = Mp3Params(n_subbands=8, n_slots=8, n_phases=8, n_alias=4)
        cpu_src, _, _ = build_sources("SW", params, n_frames=1, seed=3)
        profile = profile_program(compile_cmini(cpu_src), microblaze())
        top_two = {f.name for f in profile.hottest_functions(2)}
        assert top_two == {"filter_granule", "imdct_granule"}


class TestCLIProfile:
    def test_cli_profile(self, tmp_path):
        import io

        from repro.cli import main

        path = tmp_path / "p.cmini"
        path.write_text(SRC)
        out = io.StringIO()
        code = main(["profile", str(path), "--top", "3"], out=out)
        assert code == 0
        assert "expensive" in out.getvalue()
