"""Unit tests for the timing annotator."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import Interpreter
from repro.estimation import (
    annotate_function,
    annotate_ir_program,
    estimated_total_cycles,
)
from repro.pum import dct_hw, microblaze

SRC = """
int helper(int x) { return x * x; }
int main(void) {
  int s = 0;
  for (int i = 0; i < 6; i++) s += helper(i);
  return s;
}
"""


class TestAnnotation:
    def test_every_block_gets_delay(self):
        program = compile_cmini(SRC)
        report = annotate_ir_program(program, microblaze())
        for func in program.functions.values():
            for block in func.blocks:
                assert isinstance(block.delay, int)
                assert block.delay >= 0
        assert report.n_functions == 2
        assert report.n_blocks == program.n_blocks
        assert report.n_ops == program.n_ops

    def test_annotate_single_function(self):
        program = compile_cmini(SRC)
        delays = annotate_function(program.function("helper"), microblaze())
        assert set(delays) == {
            b.label for b in program.function("helper").blocks
        }

    def test_subset_annotation(self):
        program = compile_cmini(SRC)
        annotate_ir_program(program, microblaze(), functions=["helper"])
        assert all(
            b.delay is not None for b in program.function("helper").blocks
        )
        assert all(b.delay is None for b in program.function("main").blocks)

    def test_different_pums_give_different_delays(self):
        p1 = compile_cmini(SRC)
        p2 = compile_cmini(SRC)
        annotate_ir_program(p1, microblaze())
        annotate_ir_program(p2, dct_hw())
        d1 = [b.delay for b in p1.function("main").blocks]
        d2 = [b.delay for b in p2.function("main").blocks]
        assert d1 != d2

    def test_report_times_are_measured(self):
        program = compile_cmini(SRC)
        report = annotate_ir_program(program, microblaze())
        assert report.seconds >= 0.0
        assert "MicroBlaze" in repr(report)


class TestTotalCycles:
    def test_total_matches_trace_weighted_sum(self):
        program = compile_cmini(SRC)
        annotate_ir_program(program, microblaze())
        interp = Interpreter(program)
        interp.call("main")
        total = estimated_total_cycles(program, interp.block_counts)
        manual = 0
        for (fname, label), count in interp.block_counts.items():
            manual += program.function(fname).blocks[label].delay * count
        assert total == manual
        assert total > 0

    def test_total_scales_with_iterations(self):
        src_n = """
        int main(void) {
          int s = 0;
          for (int i = 0; i < %d; i++) s += i;
          return s;
        }"""
        totals = []
        for n in (10, 100):
            program = compile_cmini(src_n % n)
            annotate_ir_program(program, microblaze())
            interp = Interpreter(program)
            interp.call("main")
            totals.append(estimated_total_cycles(program, interp.block_counts))
        assert totals[1] > totals[0] * 5

    def test_unannotated_block_raises(self):
        program = compile_cmini(SRC)
        interp = Interpreter(program)
        interp.call("main")
        with pytest.raises(ValueError):
            estimated_total_cycles(program, interp.block_counts)

    def test_annotation_agrees_with_timed_codegen(self):
        """Sum over interpreter trace == cycles accumulated by generated code."""
        from repro.codegen import ProcessContext, generate_program

        program = compile_cmini(SRC)
        annotate_ir_program(program, microblaze())
        interp = Interpreter(program)
        interp.call("main")
        via_trace = estimated_total_cycles(program, interp.block_counts)

        generated = generate_program(program, timed=True)
        ctx = ProcessContext()
        generated.entry("main")(ctx, generated.fresh_globals())
        assert ctx.total_cycles == via_trace
