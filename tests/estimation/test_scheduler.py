"""Unit tests for Algorithm 1 (optimistic scheduling)."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.dfg import build_block_dfg
from repro.estimation.scheduler import OptimisticScheduler
from repro.pum import dct_hw, microblaze, superscalar2
from repro.pum.model import (
    ExecutionModel,
    FunctionalUnit,
    OpMapping,
    Pipeline,
    PUM,
)


def block_of(source, func="f", index=0):
    return compile_cmini(source).function(func).blocks[index]


def single_stage_pum(n_alus=1, alu_delay=1, policy="asap", width=None,
                     n_muls=1, mul_delay=2):
    units = [
        FunctionalUnit("alu", "ALU", n_alus, {"int": alu_delay}),
        FunctionalUnit("mul", "MUL", n_muls, {"mul": mul_delay}),
        FunctionalUnit("mem", "MEM", 2, {"access": 1}),
        FunctionalUnit("br", "BR", 1, {"resolve": 1}),
    ]
    mappings = {
        "alu": OpMapping(0, 0, {0: ("ALU", "int")}),
        "move": OpMapping(0, 0, {0: ("ALU", "int")}),
        "mul": OpMapping(0, 0, {0: ("MUL", "mul")}),
        "load": OpMapping(0, 0, {0: ("MEM", "access")}),
        "store": OpMapping(0, 0, {0: ("MEM", "access")}),
        "branch": OpMapping(0, 0, {0: ("BR", "resolve")}),
        "call": OpMapping(0, 0, {0: ("BR", "resolve")}),
        "comm": OpMapping(0, 0, {0: ("MEM", "access")}),
    }
    return PUM(
        "tiny", ExecutionModel(policy, mappings), units,
        [Pipeline("dp", ["EXE"], width)],
    )


class TestBasicScheduling:
    def test_empty_block_is_zero(self):
        # A block holding only a terminator still schedules (1 op).
        block = block_of("void f(void) { }")
        result = OptimisticScheduler(single_stage_pum()).schedule_block(block)
        assert result.delay >= 1

    def test_single_op_faithful_loop_count(self):
        # Paper pseudocode: iteration 1 assigns, iteration 2 retires;
        # delay counts both.
        block = block_of("void f(void) { }")  # just "ret"
        result = OptimisticScheduler(single_stage_pum()).schedule_block(block)
        assert result.delay == 2

    def test_all_ops_complete(self):
        block = block_of("int f(int a, int b) { return a * b + a - b; }")
        sched = OptimisticScheduler(single_stage_pum())
        result = sched.schedule_block(block)
        assert all(f is not None for f in result.finish_cycle)
        assert all(i is not None for i in result.issue_cycle)

    def test_delay_at_least_critical_path(self):
        source = "int f(int a) { return ((a + 1) * 2 + 3) * 4; }"
        block = block_of(source)
        pum = single_stage_pum(n_alus=8, n_muls=8)
        dfg = build_block_dfg(block)
        cp = dfg.critical_path_length(pum.service_latency)
        result = OptimisticScheduler(pum).schedule_block(block, dfg)
        assert result.delay >= cp

    def test_issue_respects_dependencies(self):
        block = block_of("int f(int a) { return (a + 1) * 2; }")
        pum = single_stage_pum(n_alus=4)
        dfg = build_block_dfg(block)
        result = OptimisticScheduler(pum).schedule_block(block, dfg)
        for i, deps in enumerate(dfg.deps):
            for j in deps:
                assert result.issue_cycle[i] > result.finish_cycle[j] - 1


class TestStructuralHazards:
    def test_fu_quantity_limits_parallelism(self):
        # 6 independent int adds on 1 ALU vs 6 ALUs.
        source = """
        int f(int a, int b) {
          int r1 = a + b; int r2 = a + b; int r3 = a + b;
          int r4 = a + b; int r5 = a + b; int r6 = a + b;
          return 0;
        }"""
        block = block_of(source)
        # Make the ALU the bottleneck (loads/stores ride on 2 MEM ports).
        narrow = OptimisticScheduler(
            single_stage_pum(n_alus=1, alu_delay=4)
        ).schedule_block(block)
        wide = OptimisticScheduler(
            single_stage_pum(n_alus=6, alu_delay=4)
        ).schedule_block(block)
        assert wide.delay < narrow.delay

    def test_multicycle_unit_serialises(self):
        source = "int f(int a) { int x = a * a; int y = a * a; return 0; }"
        block = block_of(source)
        slow = OptimisticScheduler(
            single_stage_pum(mul_delay=8)
        ).schedule_block(block)
        fast = OptimisticScheduler(
            single_stage_pum(mul_delay=1)
        ).schedule_block(block)
        assert slow.delay >= fast.delay + 7  # two muls on one unit

    def test_width_limits_issue(self):
        source = """
        int f(int a, int b) {
          int r1 = a + b; int r2 = a - b; int r3 = a + 1;
          return 0;
        }"""
        block = block_of(source)
        unbounded = OptimisticScheduler(
            single_stage_pum(n_alus=4, width=None)
        ).schedule_block(block)
        width1 = OptimisticScheduler(
            single_stage_pum(n_alus=4, width=1)
        ).schedule_block(block)
        assert width1.delay >= unbounded.delay


class TestPipelinedPE:
    def test_independent_ops_pipeline_at_ii_1(self):
        # n independent ALU ops on the 5-stage machine: delay grows ~1/op.
        def delay_of(n):
            stmts = " ".join("int r%d = a + %d;" % (i, i) for i in range(n))
            block = block_of("int f(int a) { %s return 0; }" % (stmts))
            return OptimisticScheduler(microblaze()).schedule_block(block).delay

        d4, d8 = delay_of(4), delay_of(8)
        # Each extra statement adds ld/bin/st ~3 ops -> ~3 cycles
        assert 10 <= d8 - d4 <= 16

    def test_dependent_chain_slower_than_independent(self):
        chain = block_of(
            "int f(int a) { return ((((a + 1) + 2) + 3) + 4) + 5; }"
        )
        indep_src = """
        int f(int a) {
          int r0 = a + 1; int r1 = a + 2; int r2 = a + 3;
          int r3 = a + 4; int r4 = a + 5;
          return 0;
        }"""
        indep = block_of(indep_src)
        sched = OptimisticScheduler(superscalar2())
        # chain has 7 ops, indep has 17; compare per-op delay instead.
        chain_result = sched.schedule_block(chain)
        indep_result = sched.schedule_block(indep)
        assert (chain_result.delay / len(chain.ops)
                > indep_result.delay / len(indep.ops))

    def test_superscalar_beats_single_issue(self):
        source = """
        int f(int a, int b) {
          int r1 = a + b; int r2 = a - b; int r3 = a & b; int r4 = a | b;
          int r5 = a ^ b; int r6 = a + 1; int r7 = b + 2; int r8 = a - 2;
          return 0;
        }"""
        block = block_of(source)
        single = OptimisticScheduler(microblaze()).schedule_block(block)
        dual = OptimisticScheduler(superscalar2()).schedule_block(block)
        assert dual.delay < single.delay


class TestPolicies:
    SOURCE = """
    int f(int a, int b) {
      int slow = ((a * b) * (a + b)) * (a - b);
      int q1 = a + 1; int q2 = b + 2; int q3 = a + 3;
      return slow + q1 + q2 + q3;
    }"""

    @pytest.mark.parametrize("policy", ["asap", "alap", "list"])
    def test_all_policies_terminate_and_complete(self, policy):
        block = block_of(self.SOURCE)
        pum = single_stage_pum(policy=policy, n_alus=2)
        result = OptimisticScheduler(pum).schedule_block(block)
        assert result.delay > 0
        assert all(f is not None for f in result.finish_cycle)

    def test_policies_schedule_all_ops_identically_when_unconstrained(self):
        block = block_of("int f(int a) { return a + 1; }")
        delays = set()
        for policy in ("asap", "alap", "list"):
            pum = single_stage_pum(policy=policy, n_alus=8, n_muls=8)
            delays.add(OptimisticScheduler(pum).schedule_block(block).delay)
        assert len(delays) == 1

    def test_dct_hw_example_runs(self):
        # The Fig.-4 style PUM schedules a DCT-ish block without issue.
        source = """
        float f(float x[], float c[]) {
          float acc = 0.0;
          acc += x[0] * c[0];
          acc += x[1] * c[1];
          acc += x[2] * c[2];
          acc += x[3] * c[3];
          return acc;
        }"""
        block = block_of(source)
        result = OptimisticScheduler(dct_hw()).schedule_block(block)
        assert result.delay > 0
