"""Property-based tests of the scheduler (hypothesis).

Programs are generated as random straight-line integer expressions; the
invariants checked are the ones Algorithm 1 must satisfy on any DFG:
completion, dependency ordering, critical-path lower bound and monotonicity
in functional-unit delays.
"""

from hypothesis import given, settings, strategies as st

from repro.api import compile_cmini
from repro.cdfg.dfg import build_block_dfg
from repro.estimation.scheduler import OptimisticScheduler
from repro.pum.model import (
    ExecutionModel,
    FunctionalUnit,
    OpMapping,
    Pipeline,
    PUM,
)


def make_pum(alu_delay=1, mul_delay=2, n_alus=1, n_muls=1, width=None,
             policy="asap"):
    units = [
        FunctionalUnit("alu", "ALU", n_alus, {"int": alu_delay}),
        FunctionalUnit("mul", "MUL", n_muls, {"mul": mul_delay}),
        FunctionalUnit("mem", "MEM", 2, {"access": 1}),
        FunctionalUnit("br", "BR", 1, {"resolve": 1}),
    ]
    mappings = {
        "alu": OpMapping(0, 0, {0: ("ALU", "int")}),
        "move": OpMapping(0, 0, {0: ("ALU", "int")}),
        "mul": OpMapping(0, 0, {0: ("MUL", "mul")}),
        "load": OpMapping(0, 0, {0: ("MEM", "access")}),
        "store": OpMapping(0, 0, {0: ("MEM", "access")}),
        "branch": OpMapping(0, 0, {0: ("BR", "resolve")}),
        "call": OpMapping(0, 0, {0: ("BR", "resolve")}),
        "comm": OpMapping(0, 0, {0: ("MEM", "access")}),
    }
    return PUM(
        "prop", ExecutionModel(policy, mappings), units,
        [Pipeline("dp", ["EXE"], width)],
    )


@st.composite
def straightline_blocks(draw):
    """Source text of a function whose body is one straight-line block."""
    n_stmts = draw(st.integers(min_value=1, max_value=8))
    stmts = []
    exprs = ["a", "b"]
    for i in range(n_stmts):
        op = draw(st.sampled_from(["+", "-", "*", "&", "|"]))
        lhs = draw(st.sampled_from(exprs))
        rhs = draw(st.sampled_from(exprs + ["3", "5"]))
        stmts.append("int v%d = %s %s %s;" % (i, lhs, op, rhs))
        exprs.append("v%d" % i)
    body = " ".join(stmts)
    return "int f(int a, int b) { %s return v%d; }" % (body, n_stmts - 1)


def schedule(source, pum):
    block = compile_cmini(source).function("f").blocks[0]
    dfg = build_block_dfg(block)
    return block, dfg, OptimisticScheduler(pum).schedule_dfg(dfg)


@given(straightline_blocks())
@settings(max_examples=40, deadline=None)
def test_all_ops_finish(source):
    block, _, result = schedule(source, make_pum())
    assert all(f is not None for f in result.finish_cycle)
    assert result.delay >= max(result.finish_cycle) if block.ops else True


@given(straightline_blocks())
@settings(max_examples=40, deadline=None)
def test_dependencies_respected(source):
    _, dfg, result = schedule(source, make_pum(n_alus=4, n_muls=4))
    for i, deps in enumerate(dfg.deps):
        for j in deps:
            assert result.issue_cycle[i] >= result.finish_cycle[j]


@given(straightline_blocks())
@settings(max_examples=40, deadline=None)
def test_critical_path_lower_bound(source):
    pum = make_pum(n_alus=16, n_muls=16)
    block, dfg, result = schedule(source, pum)
    assert result.delay >= dfg.critical_path_length(pum.service_latency)


@given(straightline_blocks(), st.integers(min_value=2, max_value=6))
@settings(max_examples=30, deadline=None)
def test_delay_monotone_in_fu_latency(source, factor):
    _, _, base = schedule(source, make_pum(alu_delay=1, mul_delay=2))
    _, _, slower = schedule(
        source, make_pum(alu_delay=factor, mul_delay=2 * factor)
    )
    assert slower.delay >= base.delay


@given(straightline_blocks())
@settings(max_examples=30, deadline=None)
def test_more_units_bounded_by_graham(source):
    """Greedy schedules are not monotone in resources (Graham's timing
    anomalies) — adding units may occasionally *lengthen* a schedule — but
    the anomaly is bounded: the wide machine can never be worse than twice
    the narrow one."""
    _, _, narrow = schedule(source, make_pum(n_alus=1, n_muls=1))
    _, _, wide = schedule(source, make_pum(n_alus=8, n_muls=8))
    assert wide.delay <= 2 * narrow.delay


@given(straightline_blocks(),
       st.sampled_from(["asap", "alap", "list"]))
@settings(max_examples=30, deadline=None)
def test_every_policy_completes(source, policy):
    _, _, result = schedule(source, make_pum(policy=policy, n_alus=2))
    assert result.delay > 0
