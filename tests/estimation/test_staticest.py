"""Tests for the simulation-free static estimator (search stage 0)."""

import pytest

from repro import artifacts
from repro.apps.mp3 import Mp3Params
from repro.apps.mp3.designs import build_design
from repro.estimation import (
    StaticEstimateError,
    app_profile_key,
    process_comp_cycles,
    profile_design,
    static_estimate,
)
from repro.estimation.staticest import PROFILE_KIND
from repro.pum import microblaze
from repro.tlm import Design, generate_tlm

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _single_process_design(n_iters=80, name="loop"):
    design = Design(name)
    design.add_pe("cpu", microblaze(8192, 4096))
    design.add_process("p", """
    int main(void) {
      int s = 0;
      for (int i = 0; i < %d; i++) s += i * 3;
      return s;
    }""" % n_iters, "main", "cpu")
    return design


@pytest.fixture()
def fresh_store():
    artifacts.reset_default_store()
    yield artifacts.default_store()
    artifacts.reset_default_store()


class TestProfile:
    def test_profiles_single_process(self, fresh_store):
        profile = profile_design(_single_process_design())
        assert set(profile.counts) == {"p"}
        assert profile.total_blocks("p") > 80
        assert profile.sends["p"] == []

    def test_profiles_communicating_processes(self, fresh_store):
        design, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        profile = profile_design(design)
        assert set(profile.counts) == {"decoder", "p_filter_l", "p_imdct_l"}
        # The decoder drives both HW servers over request channels.
        assert profile.sends["decoder"]
        assert profile.recvs["decoder"]
        assert all(times > 0 for _, _, times in profile.sends["decoder"])

    def test_profile_cached_in_store(self, fresh_store):
        design, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        profile_design(design)
        stored = fresh_store.stats(PROFILE_KIND).stored
        again = profile_design(design)
        assert fresh_store.stats(PROFILE_KIND).stored == stored
        assert fresh_store.stats(PROFILE_KIND).hits >= 1
        assert again.counts

    def test_profile_key_ignores_platform(self, fresh_store):
        a, _ = build_design("SW+2", SMALL, n_frames=1, seed=7,
                            icache_size=2048, dcache_size=2048)
        b, _ = build_design("SW+2", SMALL, n_frames=1, seed=7,
                            icache_size=16384, dcache_size=8192)
        b.pes["cpu"].pum.frequency_mhz = 250.0
        assert app_profile_key(a) == app_profile_key(b)
        c, _ = build_design("SW+2", SMALL, n_frames=1, seed=8)
        assert app_profile_key(a) != app_profile_key(c)

    def test_profile_roundtrips_through_disk_codec(self, fresh_store):
        from repro.estimation.staticest import AppProfile

        design, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        profile = profile_design(design)
        clone = AppProfile.from_dict(profile.to_dict())
        assert clone.counts == profile.counts
        assert clone.sends == profile.sends
        assert clone.recvs == profile.recvs

    def test_starved_process_raises(self, fresh_store):
        design = Design("starved")
        design.add_pe("cpu", microblaze(8192, 4096))
        design.add_bus("bus")
        design.add_channel(1, "never", "bus")
        design.add_process("p", """
        int main(void) {
          int v[1];
          recv(1, v, 1);
          return v[0];
        }""", "main", "cpu")
        with pytest.raises(StaticEstimateError, match="starved"):
            profile_design(design, timeout=0.2)


class TestCompCycles:
    def test_matches_timed_tlm_per_process(self, fresh_store):
        design, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        comp = process_comp_cycles(design)
        result = generate_tlm(design).run()
        assert comp == {
            name: proc.cycles for name, proc in result.processes.items()
        }

    def test_tracks_cache_configuration(self, fresh_store):
        small, _ = build_design("SW", SMALL, n_frames=1, seed=7,
                                icache_size=2048, dcache_size=2048)
        big, _ = build_design("SW", SMALL, n_frames=1, seed=7,
                              icache_size=16384, dcache_size=8192)
        assert (process_comp_cycles(small)["decoder"]
                > process_comp_cycles(big)["decoder"])


class TestStaticEstimate:
    def test_exact_on_single_process_designs(self, fresh_store):
        design = _single_process_design()
        estimate = static_estimate(design)
        real = generate_tlm(design).run().makespan_cycles
        assert round(estimate) == real

    def test_close_on_communicating_designs(self, fresh_store):
        design, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        estimate = static_estimate(design)
        real = generate_tlm(design).run().makespan_cycles
        assert abs(estimate - real) / real < 0.01

    def test_frequency_scales_estimate(self, fresh_store):
        base, _ = build_design("SW", SMALL, n_frames=1, seed=7)
        fast, _ = build_design("SW", SMALL, n_frames=1, seed=7)
        fast.pes["cpu"].pum.frequency_mhz = 200.0
        slow_est = static_estimate(base)
        fast_est = static_estimate(fast)
        assert fast_est == pytest.approx(slow_est / 2.0)

    def test_bus_parameters_change_estimate(self, fresh_store):
        narrow, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        wide, _ = build_design("SW+2", SMALL, n_frames=1, seed=7)
        for bus in wide.buses.values():
            bus.words_per_cycle = 8
            bus.arbitration_cycles = 0
        assert static_estimate(wide) < static_estimate(narrow)


class TestFrequencyIndependentDelays:
    def test_annotation_shared_across_clock_sweep(self, fresh_store):
        from repro.tlm.generator import DELAYS_KIND

        base, _ = build_design("SW", SMALL, n_frames=1, seed=7)
        generate_tlm(base)
        stored = fresh_store.stats(DELAYS_KIND).stored
        retuned, _ = build_design("SW", SMALL, n_frames=1, seed=7)
        retuned.pes["cpu"].pum.frequency_mhz = 333.0
        generate_tlm(retuned)
        # A pure clock change re-annotates nothing: delays are cycle
        # counts and the delays key excludes the frequency.
        assert fresh_store.stats(DELAYS_KIND).stored == stored
