"""Unit tests for Algorithm 2 (Compute BB Delay)."""

from repro.api import compile_cmini
from repro.estimation.delay import DelayEstimator
from repro.pum import dct_hw, microblaze
from repro.pum.library import default_dcache_stats, default_icache_stats
from repro.pum.model import BranchModel, CachePoint, MemoryModel


def blocks_of(source, func="f"):
    return compile_cmini(source).function(func).blocks


LOOP_SRC = """
int f(int a[], int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += a[i];
  return s;
}"""


class TestStatisticalTerms:
    def test_hw_pum_has_no_statistical_terms(self):
        estimator = DelayEstimator(dct_hw())
        for block in blocks_of(LOOP_SRC):
            breakdown = estimator.block_delay_breakdown(block)
            assert breakdown["branch"] == 0.0
            assert breakdown["icache"] == 0.0
            assert breakdown["dcache"] == 0.0

    def test_icache_term_proportional_to_ops(self):
        estimator = DelayEstimator(microblaze(icache_size=2048, dcache_size=0))
        blocks = blocks_of(LOOP_SRC)
        point = estimator.pum.memory.point("i", 2048)
        per_op = (1 - point.hit_rate) * estimator.pum.memory.ext_latency
        for block in blocks:
            breakdown = estimator.block_delay_breakdown(block)
            assert abs(breakdown["icache"] - block.n_ops * per_op) < 1e-9

    def test_dcache_term_counts_memory_operands(self):
        estimator = DelayEstimator(microblaze(icache_size=0, dcache_size=4096))
        block = max(blocks_of(LOOP_SRC), key=lambda b: b.n_operands)
        breakdown = estimator.block_delay_breakdown(block)
        point = estimator.pum.memory.point("d", 4096)
        per_access = (1 - point.hit_rate) * estimator.pum.memory.ext_latency
        assert abs(breakdown["dcache"] - block.n_operands * per_access) < 1e-9

    def test_no_cache_charges_every_access(self):
        estimator = DelayEstimator(microblaze(icache_size=0, dcache_size=0))
        block = blocks_of(LOOP_SRC)[0]
        breakdown = estimator.block_delay_breakdown(block)
        ext = estimator.pum.memory.ext_latency
        assert breakdown["icache"] == block.n_ops * ext

    def test_branch_term_only_on_conditional_blocks_by_default(self):
        estimator = DelayEstimator(microblaze())
        blocks = blocks_of(LOOP_SRC)
        for block in blocks:
            breakdown = estimator.block_delay_breakdown(block)
            term = block.terminator
            if term is not None and term.opcode == "br":
                assert breakdown["branch"] > 0
            else:
                assert breakdown["branch"] == 0.0

    def test_penalize_all_blocks_matches_pseudocode(self):
        estimator = DelayEstimator(microblaze(), penalize_all_blocks=True)
        expected = estimator.pum.branch.expected_penalty()
        for block in blocks_of(LOOP_SRC):
            assert estimator.block_delay_breakdown(block)["branch"] == expected

    def test_non_pipelined_pe_never_pays_branch(self):
        estimator = DelayEstimator(dct_hw(), penalize_all_blocks=True)
        for block in blocks_of(LOOP_SRC):
            assert estimator.block_delay_breakdown(block)["branch"] == 0.0


class TestDelayComposition:
    def test_block_delay_is_rounded_sum(self):
        estimator = DelayEstimator(microblaze(icache_size=2048, dcache_size=2048))
        for block in blocks_of(LOOP_SRC):
            breakdown = estimator.block_delay_breakdown(block)
            total = sum(breakdown.values())
            assert estimator.block_delay(block) == int(round(total))

    def test_bigger_cache_never_increases_delay(self):
        small = DelayEstimator(microblaze(icache_size=2048, dcache_size=2048))
        large = DelayEstimator(microblaze(icache_size=32768, dcache_size=16384))
        for block in blocks_of(LOOP_SRC):
            assert large.block_delay(block) <= small.block_delay(block)

    def test_larger_miss_rate_increases_delay(self):
        lo = MemoryModel(
            {2048: CachePoint(0.99, 0)}, {2048: CachePoint(0.99, 0)}, 22
        )
        hi = MemoryModel(
            {2048: CachePoint(0.80, 0)}, {2048: CachePoint(0.80, 0)}, 22
        )
        block = max(blocks_of(LOOP_SRC), key=lambda b: b.n_ops)
        d_lo = DelayEstimator(
            microblaze(2048, 2048, memory_model=lo)
        ).block_delay(block)
        d_hi = DelayEstimator(
            microblaze(2048, 2048, memory_model=hi)
        ).block_delay(block)
        assert d_hi > d_lo

    def test_branch_miss_rate_scales_branch_term(self):
        block = next(
            b for b in blocks_of(LOOP_SRC)
            if b.terminator is not None and b.terminator.opcode == "br"
        )
        high = microblaze(
            branch_model=BranchModel("static-not-taken", 8, 0.5)
        )
        low = microblaze(
            branch_model=BranchModel("static-not-taken", 8, 0.1)
        )
        assert (
            DelayEstimator(high).block_delay_breakdown(block)["branch"]
            > DelayEstimator(low).block_delay_breakdown(block)["branch"]
        )

    def test_fill_correction_reduces_schedule_delay(self):
        block = blocks_of(LOOP_SRC)[0]
        with_fix = DelayEstimator(microblaze())
        without = DelayEstimator(microblaze(), pipeline_fill_correction=False)
        assert with_fix.schedule_delay(block) < without.schedule_delay(block)
        # The correction equals the pipeline depth.
        assert (
            without.schedule_delay(block) - with_fix.schedule_delay(block)
            == 5
        )

    def test_schedule_delay_never_below_one(self):
        estimator = DelayEstimator(microblaze())
        for block in blocks_of("void f(void) { }"):
            assert estimator.schedule_delay(block) >= 1

    def test_nonzero_hit_delay_charged(self):
        slow_hits = MemoryModel(
            {2048: CachePoint(1.0, 2)}, {2048: CachePoint(1.0, 3)}, 22
        )
        free_hits = MemoryModel(
            {2048: CachePoint(1.0, 0)}, {2048: CachePoint(1.0, 0)}, 22
        )
        block = max(blocks_of(LOOP_SRC), key=lambda b: b.n_ops)
        slow = DelayEstimator(
            microblaze(2048, 2048, memory_model=slow_hits)
        ).block_delay_breakdown(block)
        free = DelayEstimator(
            microblaze(2048, 2048, memory_model=free_hits)
        ).block_delay_breakdown(block)
        assert slow["icache"] == block.n_ops * 2
        assert slow["dcache"] == block.n_operands * 3
        assert free["icache"] == 0.0 and free["dcache"] == 0.0

    def test_default_stats_cover_paper_sizes(self):
        # Regression guard: the default tables must include all sizes the
        # paper sweeps, or Table 2/3 benches would fail on lookup.
        icache = default_icache_stats()
        dcache = default_dcache_stats()
        for size in (2048, 8192, 16384, 32768):
            assert size in icache
        for size in (2048, 4096, 16384):
            assert size in dcache
