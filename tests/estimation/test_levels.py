"""Tests for the reduced-detail estimator levels."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import Interpreter
from repro.estimation import (
    DelayEstimator,
    LatencyTableEstimator,
    OpCountEstimator,
    annotate_with_detail,
    estimated_total_cycles,
    make_estimator,
)
from repro.pum import dct_hw, microblaze

SRC = """
float work(float v[], int n) {
  float acc = 0.0;
  for (int i = 0; i < n; i++) {
    acc += v[i] * v[i] + 0.25;
  }
  return acc;
}
int main(void) {
  float buf[32];
  for (int i = 0; i < 32; i++) buf[i] = (float)i * 0.125;
  return (int)work(buf, 32);
}
"""


def hot_block():
    func = compile_cmini(SRC).function("work")
    return max(func.blocks, key=lambda b: len(b.ops))


class TestFactory:
    def test_dispatch(self):
        assert isinstance(make_estimator(microblaze(), "full"), DelayEstimator)
        assert isinstance(
            make_estimator(microblaze(), "latency"), LatencyTableEstimator
        )
        assert isinstance(
            make_estimator(microblaze(), "opcount"), OpCountEstimator
        )

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            make_estimator(microblaze(), "quantum")

    def test_bad_cpi(self):
        with pytest.raises(ValueError):
            OpCountEstimator(microblaze(), cpi=0)


class TestSemantics:
    def test_opcount_is_ops_times_cpi(self):
        block = hot_block()
        estimator = OpCountEstimator(dct_hw(), cpi=2.0)
        assert estimator.schedule_delay(block) == 2 * block.n_ops

    def test_latency_table_sums_service_latencies(self):
        block = hot_block()
        pum = dct_hw()
        estimator = LatencyTableEstimator(pum)
        expected = sum(pum.service_latency(op) for op in block.ops)
        assert estimator.schedule_delay(block) == expected

    def test_latency_level_ignores_parallelism(self):
        """On a spatial HW datapath the full model exploits parallelism the
        latency table cannot see, so the table overestimates."""
        block = hot_block()
        full = DelayEstimator(dct_hw()).schedule_delay(block)
        table = LatencyTableEstimator(dct_hw()).schedule_delay(block)
        assert table >= full

    def test_statistical_terms_shared_across_levels(self):
        block = hot_block()
        pum = microblaze(2048, 2048)
        for detail in ("full", "latency", "opcount"):
            breakdown = make_estimator(pum, detail).block_delay_breakdown(block)
            reference = DelayEstimator(pum).block_delay_breakdown(block)
            assert breakdown["icache"] == reference["icache"]
            assert breakdown["dcache"] == reference["dcache"]


class TestAccuracyOrdering:
    def test_full_detail_closest_to_board(self):
        from repro.isa import compile_program
        from repro.cycle import run_to_halt

        isz, dsz = 32768, 32768  # minimise statistical effects
        image = compile_program(compile_cmini(SRC), "main", ())
        board = run_to_halt(image, isz, dsz).cycle

        errors = {}
        for detail in ("full", "latency", "opcount"):
            ir = compile_cmini(SRC)
            annotate_with_detail(ir, microblaze(isz, dsz), detail)
            interp = Interpreter(ir)
            interp.call("main")
            estimate = estimated_total_cycles(ir, interp.block_counts)
            errors[detail] = abs(estimate - board) / board
        assert errors["full"] < errors["opcount"]
        assert errors["full"] < 0.25

    def test_annotation_time_returned(self):
        ir = compile_cmini(SRC)
        seconds = annotate_with_detail(ir, microblaze(), "full")
        assert seconds >= 0.0
        assert all(
            b.delay is not None
            for f in ir.functions.values() for b in f.blocks
        )
