"""Golden-value tests: hand-computed Algorithm-1 schedules on tiny DFGs.

These pin the exact cycle-by-cycle semantics of the faithful pseudocode
implementation (assign after advclock, +1 loop accounting, demand/commit
behaviour), so refactors cannot silently change the timing model.
"""

from repro.cdfg.dfg import BlockDFG
from repro.cdfg.ir import BasicBlock, Op
from repro.estimation.scheduler import OptimisticScheduler
from repro.pum.model import (
    ExecutionModel,
    FunctionalUnit,
    OpMapping,
    Pipeline,
    PUM,
)


def manual_block(op_specs):
    """Build a block from (opclass-ish opcode, dst, args) tuples."""
    block = BasicBlock(0)
    for opcode, dst, args, attrs in op_specs:
        block.append(Op(opcode, dst, args, dict(attrs)))
    return block


def chain_block(n):
    """n dependent int adds: t0 = const, t_i = t_{i-1} + t_{i-1}."""
    specs = [("const", 0, (), {"value": 1, "ctype": "int"})]
    for i in range(1, n + 1):
        specs.append(
            ("bin", i, (i - 1, i - 1), {"op": "+", "ctype": "int"})
        )
    return manual_block(specs)


def indep_block(n):
    """n independent const ops."""
    return manual_block(
        [("const", i, (), {"value": i, "ctype": "int"}) for i in range(n)]
    )


def one_stage_pum(n_alus=1, alu_delay=1, width=None):
    units = [FunctionalUnit("alu", "ALU", n_alus, {"int": alu_delay})]
    mappings = {
        "alu": OpMapping(0, 0, {0: ("ALU", "int")}),
        "move": OpMapping(0, 0, {0: ("ALU", "int")}),
    }
    return PUM("one", ExecutionModel("asap", mappings), units,
               [Pipeline("p", ["EXE"], width)])


def five_stage_pum():
    units = [
        FunctionalUnit("alu", "ALU", 1, {"int": 1}),
        FunctionalUnit("mem", "MEM", 1, {"access": 1}),
    ]
    mappings = {
        "alu": OpMapping(2, 2, {2: ("ALU", "int")}),
        "move": OpMapping(2, 2, {2: ("ALU", "int")}),
        "load": OpMapping(2, 3, {3: ("MEM", "access")}),
    }
    return PUM("five", ExecutionModel("asap", mappings), units,
               [Pipeline("p", ["IF", "ID", "EX", "MEM", "WB"], 1)])


class TestSingleStageGolden:
    def test_one_op_takes_two_loop_iterations(self):
        # iter 1: assign; iter 2: retire -> paper loop counts 2.
        block = indep_block(1)
        result = OptimisticScheduler(one_stage_pum()).schedule_block(block)
        assert result.delay == 2
        assert result.issue_cycle == [0]
        assert result.finish_cycle == [1]

    def test_n_independent_ops_one_unit(self):
        # One ALU, width unbounded: one op enters per cycle (unit-limited),
        # one retires per cycle: delay = n + 1.
        for n in (2, 3, 5):
            block = indep_block(n)
            result = OptimisticScheduler(one_stage_pum()).schedule_block(block)
            assert result.delay == n + 1

    def test_n_independent_ops_n_units(self):
        # n units: all assigned in cycle 0, all retire in cycle 1.
        block = indep_block(4)
        result = OptimisticScheduler(
            one_stage_pum(n_alus=4)
        ).schedule_block(block)
        assert result.delay == 2
        assert result.issue_cycle == [0, 0, 0, 0]

    def test_width_one_serialises_even_with_many_units(self):
        block = indep_block(3)
        result = OptimisticScheduler(
            one_stage_pum(n_alus=3, width=1)
        ).schedule_block(block)
        assert result.delay == 4  # one per cycle + final accounting

    def test_dependent_chain_fully_serial(self):
        # Chain of k adds after a const: demand at stage 0 forces each op to
        # wait for its predecessor's commit: one op per cycle.
        block = chain_block(3)  # 4 ops total
        result = OptimisticScheduler(one_stage_pum(n_alus=4)).schedule_block(block)
        assert result.delay == 5
        assert result.issue_cycle == [0, 1, 2, 3]

    def test_two_cycle_alu(self):
        # Chain with 2-cycle ALU: const (2c) then each add 2c, serial.
        block = chain_block(2)  # 3 ops
        result = OptimisticScheduler(
            one_stage_pum(n_alus=4, alu_delay=2)
        ).schedule_block(block)
        # const issues at 0 and retires in the advclock of cycle 2; each
        # dependent add issues the same cycle its producer commits.
        assert result.issue_cycle == [0, 2, 4]
        assert result.finish_cycle == [2, 4, 6]
        assert result.delay == 7


class TestFiveStageGolden:
    def test_single_alu_op_traverses_pipe(self):
        block = indep_block(1)
        result = OptimisticScheduler(five_stage_pum()).schedule_block(block)
        # Assigned cycle 0, one stage per advclock, retires after WB at
        # cycle 5, loop counter ends at 6.
        assert result.finish_cycle == [5]
        assert result.delay == 6

    def test_independent_stream_has_ii_one(self):
        for n in (2, 4, 8):
            block = indep_block(n)
            result = OptimisticScheduler(five_stage_pum()).schedule_block(block)
            # Steady state: one issue per cycle -> last retires at n-1+5.
            assert result.finish_cycle[-1] == n - 1 + 5
            assert result.delay == n + 5

    def test_forwarding_dependent_alu_chain(self):
        # With demand=commit=EX, a dependent ALU op enters EX the cycle
        # after its producer finishes EX: no stalls for back-to-back adds.
        block = chain_block(3)
        result = OptimisticScheduler(five_stage_pum()).schedule_block(block)
        assert result.delay == 4 + 5  # like an independent stream

    def test_dual_pipeline_issues_two_per_cycle(self):
        units = [FunctionalUnit("alu", "ALU", 2, {"int": 1})]
        mappings = {
            "alu": OpMapping(2, 2, {2: ("ALU", "int")}),
            "move": OpMapping(2, 2, {2: ("ALU", "int")}),
        }
        dual = PUM(
            "dual", ExecutionModel("asap", mappings), units,
            [Pipeline("p0", ["IF", "ID", "EX", "MEM", "WB"], 1),
             Pipeline("p1", ["IF", "ID", "EX", "MEM", "WB"], 1)],
        )
        block = indep_block(8)
        result = OptimisticScheduler(dual).schedule_block(block)
        # Two ops fetched per cycle: last pair issues at cycle 3.
        assert result.issue_cycle == [0, 0, 1, 1, 2, 2, 3, 3]
        single = PUM(
            "single", ExecutionModel("asap", mappings), units,
            [Pipeline("p0", ["IF", "ID", "EX", "MEM", "WB"], 1)],
        )
        baseline = OptimisticScheduler(single).schedule_block(block)
        assert result.delay < baseline.delay

    def test_load_use_stall(self):
        # load commits at MEM (stage 3); a dependent alu op demands at EX.
        block = manual_block([
            ("const", 0, (), {"value": 0, "ctype": "int"}),
            ("ldx", 1, (0,), {"var": "a", "scope": "local", "ctype": "int"}),
            ("bin", 2, (1, 1), {"op": "+", "ctype": "int"}),
        ])
        plain = manual_block([
            ("const", 0, (), {"value": 0, "ctype": "int"}),
            ("bin", 1, (0, 0), {"op": "+", "ctype": "int"}),
            ("bin", 2, (1, 1), {"op": "+", "ctype": "int"}),
        ])
        loaded = OptimisticScheduler(five_stage_pum()).schedule_block(block)
        alu_only = OptimisticScheduler(five_stage_pum()).schedule_block(plain)
        assert loaded.delay == alu_only.delay + 1  # exactly one bubble
