"""Structural schedule memoization — equivalence, LRU behaviour, disk form,
PUM fingerprints and the environment opt-out."""

import pytest

from repro.api import compile_cmini
from repro.apps import jpeg, kernels
from repro.apps.mp3 import Mp3Params, build_sources
from repro.cdfg.dfg import build_block_dfg
from repro.estimation import schedcache
from repro.estimation.annotator import annotate_ir_program
from repro.estimation.scheduler import OptimisticScheduler
from repro.estimation.schedcache import (
    CacheStats,
    ScheduleCache,
    dfg_structural_hash,
)
from repro.pum import (
    dct_hw,
    filtercore_hw,
    imdct_hw,
    microblaze,
    pum_fingerprint,
    pum_from_json,
    pum_to_json,
    superscalar2,
)

SMALL_MP3 = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)

PUM_PRESETS = {
    "microblaze": microblaze,
    "dct-hw": dct_hw,
    "filtercore-hw": filtercore_hw,
    "imdct-hw": imdct_hw,
    "superscalar2": superscalar2,
}


def _app_programs():
    """name -> IR program, covering the MP3 decoder, JPEG and the kernels."""
    mp3_cpu, mp3_hw, _frames = build_sources("SW+2", SMALL_MP3, n_frames=1)
    sources = {
        "mp3": mp3_cpu,
        "jpeg": jpeg.cpu_source(n_blocks=1),
        "kernels-dct": kernels.dct_source(n_blocks=1),
        "kernels-fir": kernels.fir_source(n_taps=4, n_samples=16),
        "kernels-sort": kernels.sort_source(n_items=16),
    }
    sources.update(
        ("mp3-hw-%s" % unit, src) for unit, src in mp3_hw.items()
    )
    return {name: compile_cmini(src) for name, src in sources.items()}


APP_PROGRAMS = _app_programs()


def _all_delays(ir_program, pum, cache):
    annotate_ir_program(ir_program, pum, cache=cache)
    return {
        (name, block.label): block.delay
        for name in ir_program.functions
        for block in ir_program.function(name).blocks
    }


class TestCachedDelaysBitIdentical:
    @pytest.mark.parametrize("preset", sorted(PUM_PRESETS))
    @pytest.mark.parametrize("app", sorted(APP_PROGRAMS))
    def test_cached_equals_uncached(self, preset, app):
        pum = PUM_PRESETS[preset]()
        ir_program = APP_PROGRAMS[app]
        uncached = _all_delays(ir_program, pum, cache=False)
        shared = ScheduleCache()
        cold = _all_delays(ir_program, pum, cache=shared)
        warm = _all_delays(ir_program, pum, cache=shared)
        assert uncached == cold == warm
        assert shared.stats.stored > 0

    def test_mp3_reannotation_records_hits(self):
        pum = microblaze()
        ir_program = APP_PROGRAMS["mp3"]
        shared = ScheduleCache()
        first = _all_delays(ir_program, pum, cache=shared)
        hits_before = shared.stats.hits
        second = _all_delays(ir_program, pum, cache=shared)
        assert first == second
        assert shared.stats.hits > hits_before

    def test_schedule_reused_across_cache_sizes(self):
        """The fingerprint excludes I/D sizes: an 8k/4k schedule serves a
        2k/2k re-annotation (only Algorithm-2 terms differ)."""
        ir_program = APP_PROGRAMS["kernels-fir"]
        shared = ScheduleCache()
        _all_delays(ir_program, microblaze(8192, 4096), cache=shared)
        misses_before = shared.stats.misses
        _all_delays(ir_program, microblaze(2048, 2048), cache=shared)
        assert shared.stats.misses == misses_before


class TestStructuralHash:
    def test_renamed_variables_share_a_hash(self):
        a = compile_cmini("int f(int x, int y) { return x * 3 + y; }")
        b = compile_cmini("int f(int p, int q) { return p * 3 + q; }")
        hash_a = [
            dfg_structural_hash(build_block_dfg(blk))
            for blk in a.function("f").blocks
        ]
        hash_b = [
            dfg_structural_hash(build_block_dfg(blk))
            for blk in b.function("f").blocks
        ]
        assert hash_a == hash_b

    def test_different_structure_differs(self):
        a = compile_cmini("int f(int x) { return x * 3; }")
        b = compile_cmini("int f(int x) { return x + 3; }")
        hash_a = dfg_structural_hash(
            build_block_dfg(a.function("f").blocks[0])
        )
        hash_b = dfg_structural_hash(
            build_block_dfg(b.function("f").blocks[0])
        )
        assert hash_a != hash_b

    def test_hash_is_stable_across_rebuilds(self):
        src = "int f(int x) { int s = 0; for (int i = 0; i < x; i++) s += i; return s; }"
        hashes = set()
        for _ in range(2):
            ir_program = compile_cmini(src)
            for blk in ir_program.function("f").blocks:
                hashes.add(dfg_structural_hash(build_block_dfg(blk)))
        ir_again = compile_cmini(src)
        for blk in ir_again.function("f").blocks:
            assert dfg_structural_hash(build_block_dfg(blk)) in hashes


class TestPumFingerprint:
    def test_distinct_across_presets(self):
        fingerprints = {pum_fingerprint(f()) for f in PUM_PRESETS.values()}
        assert len(fingerprints) == len(PUM_PRESETS)

    def test_stable_across_json_round_trip(self):
        pum = microblaze()
        clone = pum_from_json(pum_to_json(pum))
        assert pum_fingerprint(pum) == pum_fingerprint(clone)

    def test_insensitive_to_cache_sizes(self):
        assert pum_fingerprint(microblaze(8192, 4096)) == pum_fingerprint(
            microblaze(2048, 2048)
        )

    def test_sensitive_to_datapath_changes(self):
        base = microblaze()
        wider = microblaze()
        wider.units[0].quantity += 1
        assert pum_fingerprint(base) != pum_fingerprint(wider)


class TestScheduleCacheLRU:
    def test_stats_and_lru_eviction(self):
        cache = ScheduleCache(max_entries=2)
        cache.put("fp", "a", 3, (0,), (2,))
        cache.put("fp", "b", 4, (0,), (3,))
        assert cache.get("fp", "a") == (3, (0,), (2,))  # refresh 'a'
        cache.put("fp", "c", 5, (0,), (4,))  # evicts 'b', the LRU entry
        assert cache.get("fp", "b") is None
        assert cache.get("fp", "a") is not None
        assert cache.get("fp", "c") is not None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (3, 1)
        assert stats.stored == 3 and stats.evicted == 1
        assert len(cache) == 2

    def test_put_same_key_is_idempotent(self):
        cache = ScheduleCache()
        cache.put("fp", "a", 3, (0,), (2,))
        cache.put("fp", "a", 3, (0,), (2,))
        assert len(cache) == 1 and cache.stats.stored == 1

    def test_stats_reset_and_dict(self):
        stats = CacheStats()
        stats.hits = 3
        stats.misses = 1
        assert stats.hit_rate == 0.75
        assert stats.as_dict()["hits"] == 3
        stats.reset()
        assert stats.lookups == 0 and stats.hit_rate == 0.0


class TestDiskCache:
    def test_round_trip_serves_hits(self, tmp_path):
        path = str(tmp_path / "sched.json")
        ir_program = APP_PROGRAMS["kernels-dct"]
        pum = dct_hw()
        original = ScheduleCache()
        baseline = _all_delays(ir_program, pum, cache=original)
        original.save(path)

        warmed = ScheduleCache(path=path)
        assert len(warmed) == len(original)
        replay = _all_delays(ir_program, pum, cache=warmed)
        assert replay == baseline
        assert warmed.stats.misses == 0 and warmed.stats.hits > 0

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        cache = ScheduleCache(path=str(path))
        assert len(cache) == 0
        path.write_text('{"version": 999, "entries": {"k": [1, [], []]}}')
        assert cache.load(str(path)) == 0

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            ScheduleCache().save()

    def test_save_is_atomic(self, tmp_path, monkeypatch):
        import json
        import os as os_module

        path = str(tmp_path / "sched.json")
        cache = ScheduleCache()
        cache.put("fp", "hash", 3, [0, 1], [1, 2])
        cache.save(path)
        before = open(path).read()

        # A crash mid-write must leave the previous complete file intact:
        # fail the final rename and confirm the target is untouched and no
        # temp litter remains readable as the cache.
        def exploding_replace(src, dst):
            raise OSError("simulated crash during replace")

        monkeypatch.setattr("repro.ioutil.os.replace", exploding_replace)
        cache.put("fp2", "hash2", 4, [0], [1])
        with pytest.raises(OSError):
            cache.save(path)
        assert open(path).read() == before
        assert json.loads(before)["entries"]  # still complete JSON
        leftovers = [n for n in os_module.listdir(str(tmp_path))
                     if n.startswith("sched.json.tmp")]
        assert leftovers == []  # temp file cleaned up on failure


class TestDefaultCache:
    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHED_CACHE", "0")
        schedcache.reset_default_cache()
        try:
            assert schedcache.default_cache() is None
            scheduler = OptimisticScheduler(microblaze())
            assert scheduler.cache is None and scheduler.cache_stats is None
        finally:
            schedcache.reset_default_cache()

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHED_CACHE", raising=False)
        schedcache.reset_default_cache()
        try:
            cache = schedcache.default_cache()
            assert isinstance(cache, ScheduleCache)
            scheduler = OptimisticScheduler(microblaze())
            assert scheduler.cache is cache
        finally:
            schedcache.reset_default_cache()

    def test_backing_file(self, tmp_path, monkeypatch):
        path = str(tmp_path / "default.json")
        monkeypatch.setenv("REPRO_SCHED_CACHE_FILE", path)
        schedcache.reset_default_cache()
        try:
            cache = schedcache.default_cache()
            cache.put("fp", "a", 3, (0,), (2,))
            assert schedcache.save_default_cache() == path
            schedcache.reset_default_cache()
            assert schedcache.default_cache().get("fp", "a") is not None
        finally:
            schedcache.reset_default_cache()
