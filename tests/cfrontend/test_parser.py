"""Unit tests for the CMini parser."""

import pytest

from repro.cfrontend import cast
from repro.cfrontend.errors import ParseError
from repro.cfrontend.parser import parse


def parse_expr(text):
    """Parse a single expression via a wrapper function."""
    program = parse("void f(void) { x = %s; }" % text)
    stmt = program.functions[0].body.stmts[0]
    return stmt.expr.value


class TestTopLevel:
    def test_empty_program(self):
        assert parse("").decls == []

    def test_global_scalar(self):
        program = parse("int g;")
        decl = program.globals[0]
        assert decl.name == "g"
        assert decl.ctype == "int"

    def test_global_with_initializer(self):
        decl = parse("int g = 42;").globals[0]
        assert isinstance(decl.init, cast.IntLit)

    def test_const_global(self):
        assert parse("const int N = 4;").globals[0].is_const

    def test_global_array(self):
        decl = parse("float a[8];").globals[0]
        assert decl.ctype == ("array", "float", decl.ctype[2])

    def test_array_brace_initializer(self):
        decl = parse("int a[3] = {1, 2, 3};").globals[0]
        assert len(decl.init) == 3

    def test_array_trailing_comma(self):
        decl = parse("int a[2] = {1, 2,};").globals[0]
        assert len(decl.init) == 2

    def test_decl_list(self):
        program = parse("int a, b, c;")
        assert [d.name for d in program.globals] == ["a", "b", "c"]

    def test_function_with_params(self):
        func = parse("int f(int a, float b) { return a; }").functions[0]
        assert func.name == "f"
        assert [p.name for p in func.params] == ["a", "b"]

    def test_function_void_params(self):
        func = parse("void f(void) { }").functions[0]
        assert func.params == []

    def test_array_parameter(self):
        func = parse("void f(int a[]) { }").functions[0]
        assert func.params[0].ctype.elem == "int"
        assert func.params[0].ctype.size is None

    def test_sized_array_parameter(self):
        func = parse("void f(int a[4]) { }").functions[0]
        assert func.params[0].ctype.size == 4

    def test_void_variable_rejected(self):
        with pytest.raises(ParseError):
            parse("void v;")

    def test_void_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(void x) { }")


class TestStatements:
    def test_if_else(self):
        func = parse("void f(int x) { if (x) x = 1; else x = 2; }").functions[0]
        stmt = func.body.stmts[0]
        assert isinstance(stmt, cast.If)
        assert stmt.other is not None

    def test_dangling_else_binds_inner(self):
        src = "void f(int x) { if (x) if (x > 1) x = 1; else x = 2; }"
        outer = parse(src).functions[0].body.stmts[0]
        assert outer.other is None
        inner = outer.then.stmts[0]
        assert inner.other is not None

    def test_while(self):
        stmt = parse("void f(int x) { while (x) x--; }").functions[0].body.stmts[0]
        assert isinstance(stmt, cast.While)

    def test_do_while(self):
        stmt = parse("void f(int x) { do x--; while (x); }").functions[0].body.stmts[0]
        assert isinstance(stmt, cast.DoWhile)

    def test_for_with_decl(self):
        stmt = parse(
            "void f(void) { for (int i = 0; i < 4; i++) { } }"
        ).functions[0].body.stmts[0]
        assert isinstance(stmt, cast.For)
        assert isinstance(stmt.init[0], cast.VarDecl)

    def test_for_empty_header(self):
        stmt = parse("void f(void) { for (;;) break; }").functions[0].body.stmts[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_value_and_void(self):
        funcs = parse(
            "int f(void) { return 1; } void g(void) { return; }"
        ).functions
        assert isinstance(funcs[0].body.stmts[0].value, cast.IntLit)
        assert funcs[1].body.stmts[0].value is None

    def test_break_continue(self):
        body = parse(
            "void f(void) { while (1) { break; continue; } }"
        ).functions[0].body.stmts[0].body
        assert isinstance(body.stmts[0], cast.Break)

    def test_empty_statement(self):
        func = parse("void f(void) { ;;; }").functions[0]
        assert func.body.stmts == []

    def test_nested_blocks(self):
        func = parse("void f(void) { { int x; { x = 1; } } }").functions[0]
        assert isinstance(func.body.stmts[0], cast.Block)

    def test_unterminated_block(self):
        with pytest.raises(ParseError):
            parse("void f(void) { int x;")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_logical_precedence(self):
        expr = parse_expr("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_comparison_vs_shift(self):
        expr = parse_expr("a << 2 < b")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_unary_minus(self):
        expr = parse_expr("-a * b")
        assert expr.op == "*"
        assert isinstance(expr.left, cast.UnOp)

    def test_unary_plus_is_noop(self):
        expr = parse_expr("+a")
        assert isinstance(expr, cast.Name)

    def test_ternary(self):
        expr = parse_expr("a ? b : c")
        assert isinstance(expr, cast.Cond)

    def test_ternary_right_associative(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr.other, cast.Cond)

    def test_assignment_right_associative(self):
        program = parse("void f(void) { a = b = 1; }")
        expr = program.functions[0].body.stmts[0].expr
        assert isinstance(expr.value, cast.Assign)

    def test_compound_assignment(self):
        program = parse("void f(void) { a += 2; }")
        expr = program.functions[0].body.stmts[0].expr
        assert expr.op == "+="

    def test_prefix_increment_desugars(self):
        program = parse("void f(void) { ++a; }")
        expr = program.functions[0].body.stmts[0].expr
        assert isinstance(expr, cast.Assign) and expr.op == "+="

    def test_postfix_decrement_desugars(self):
        program = parse("void f(void) { a--; }")
        expr = program.functions[0].body.stmts[0].expr
        assert isinstance(expr, cast.Assign) and expr.op == "-="

    def test_cast_expression(self):
        expr = parse_expr("(float)a")
        assert isinstance(expr, cast.Cast)
        assert expr.target == "float"

    def test_call_with_args(self):
        expr = parse_expr("f(1, g(2), x)")
        assert isinstance(expr, cast.Call)
        assert len(expr.args) == 3

    def test_array_index(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, cast.Index)

    def test_index_of_non_name_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(void) { x = f()[0]; }")

    def test_assign_to_literal_rejected(self):
        with pytest.raises(ParseError):
            parse("void f(void) { 1 = 2; }")

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("void f(void) { x = 1 }")

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse("void f(void) {\n  x = ;\n}")
        assert info.value.line == 2
