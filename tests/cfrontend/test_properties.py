"""Property-based tests of the front-end (hypothesis)."""

import string

from hypothesis import given, settings, strategies as st

from repro.cfrontend.lexer import tokenize
from repro.cfrontend.parser import parse
from repro.cfrontend.semantic import parse_and_analyze

identifiers = st.text(
    alphabet=string.ascii_lowercase, min_size=1, max_size=8
).filter(lambda s: s not in {
    "int", "float", "void", "if", "else", "while", "for", "do",
    "return", "break", "continue", "const", "send", "recv",
})


class TestLexerProperties:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_int_literals_round_trip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind == "int"
        assert tokens[0].value == value

    @given(st.floats(min_value=0.0, max_value=1e12,
                     allow_nan=False, allow_infinity=False))
    def test_float_literals_round_trip(self, value):
        text = repr(float(value))
        if "e" not in text and "." not in text:  # repr of integral floats
            text += ".0"
        tokens = tokenize(text)
        assert tokens[0].kind == "float"
        assert tokens[0].value == float(text)

    @given(identifiers)
    def test_identifiers_tokenize_as_single_token(self, name):
        tokens = tokenize(name)
        assert len(tokens) == 2
        assert tokens[0] .kind == "id"
        assert tokens[0].value == name

    @given(st.lists(st.sampled_from(
        ["+", "-", "*", "/", "<", ">", "(", ")", "x", "1", " "]
    ), max_size=30))
    def test_lexer_never_crashes_on_operator_soup(self, pieces):
        # Any mix of these characters is lexable (maybe not parseable).
        tokenize(" ".join(pieces))


def _const_expr(draw_depth=2):
    """Strategy for small constant integer expressions as text + value."""
    literals = st.integers(min_value=0, max_value=99).map(
        lambda v: (str(v), v)
    )

    def combine(children):
        return st.tuples(children, st.sampled_from("+-*"), children).map(
            lambda t: (
                "(%s %s %s)" % (t[0][0], t[1], t[2][0]),
                {"+": t[0][1] + t[2][1],
                 "-": t[0][1] - t[2][1],
                 "*": t[0][1] * t[2][1]}[t[1]],
            )
        )

    return st.recursive(literals, combine, max_leaves=8)


class TestParserProperties:
    @given(_const_expr())
    @settings(max_examples=60)
    def test_constant_folding_matches_python(self, expr):
        text, expected = expr
        _, info = parse_and_analyze("const int V = %s;" % text)
        assert info.global_values["V"] == expected

    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    def test_declaration_lists_preserve_order(self, names):
        program = parse("int %s;" % ", ".join(names))
        assert [d.name for d in program.globals] == names

    @given(st.integers(min_value=1, max_value=64))
    def test_array_sizes_resolve(self, n):
        _, info = parse_and_analyze("int a[%d];" % n)
        assert info.globals["a"].ctype.size == n
