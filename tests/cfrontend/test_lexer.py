"""Unit tests for the CMini lexer."""

import pytest

from repro.cfrontend.errors import LexError
from repro.cfrontend.lexer import Token, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        assert kinds("foo _bar x1") == [
            ("id", "foo"), ("id", "_bar"), ("id", "x1"),
        ]

    def test_keywords_are_distinguished_from_identifiers(self):
        assert kinds("int intx") == [("kw", "int"), ("id", "intx")]

    def test_all_keywords(self):
        for kw in ["int", "float", "void", "if", "else", "while", "for",
                   "do", "return", "break", "continue", "const"]:
            assert kinds(kw) == [("kw", kw)]

    def test_punctuation(self):
        assert kinds("(){}[];,") == [
            ("punct", c) for c in "(){}[];,"
        ]


class TestNumericLiterals:
    def test_decimal_int(self):
        assert kinds("42") == [("int", 42)]

    def test_zero(self):
        assert kinds("0") == [("int", 0)]

    def test_hex_int(self):
        assert kinds("0xFF 0x10") == [("int", 255), ("int", 16)]

    def test_float_with_point(self):
        assert kinds("3.25") == [("float", 3.25)]

    def test_float_leading_dot_digits(self):
        assert kinds(".5") == [("float", 0.5)]

    def test_float_exponent(self):
        assert kinds("1e3 2.5e-2 1E+2") == [
            ("float", 1000.0), ("float", 0.025), ("float", 100.0),
        ]

    def test_float_f_suffix(self):
        assert kinds("1.5f") == [("float", 1.5)]

    def test_int_then_member_like_is_error(self):
        with pytest.raises(LexError):
            tokenize("12abc")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")


class TestOperators:
    def test_multichar_operators_maximal_munch(self):
        assert kinds("a <<= b") == [
            ("id", "a"), ("op", "<<="), ("id", "b"),
        ]
        assert kinds("a << = b")[1:3] == [("op", "<<"), ("op", "=")]

    def test_comparison_operators(self):
        assert kinds("< <= > >= == !=") == [
            ("op", o) for o in ["<", "<=", ">", ">=", "==", "!="]
        ]

    def test_logical_and_bitwise(self):
        assert kinds("&& || & | ^ ~ !") == [
            ("op", o) for o in ["&&", "||", "&", "|", "^", "~", "!"]
        ]

    def test_increment_decrement(self):
        assert kinds("++ --") == [("op", "++"), ("op", "--")]

    def test_compound_assignment(self):
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="]:
            assert kinds(op) == [("op", op)]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [("id", "a"), ("id", "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [("id", "a"), ("id", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never ends")

    def test_line_numbers_advance(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]
        assert tokens[2].col == 3

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")


class TestTokenEquality:
    def test_tokens_compare_by_kind_and_value(self):
        a = Token("id", "x", 1, 1)
        b = Token("id", "x", 5, 9)
        assert a == b
        assert hash(a) == hash(b)

    def test_repr_mentions_position(self):
        assert "line=2" in repr(Token("id", "x", 2, 7))
