"""Unit tests for CMini semantic analysis."""

import pytest

from repro.cfrontend import cast
from repro.cfrontend.ctypes_ import FLOAT, INT
from repro.cfrontend.errors import SemanticError
from repro.cfrontend.semantic import parse_and_analyze


def analyze(source):
    return parse_and_analyze(source)


class TestGlobals:
    def test_scalar_default_values(self):
        _, info = analyze("int a; float b;")
        assert info.global_values == {"a": 0, "b": 0.0}

    def test_const_folding_in_initializers(self):
        _, info = analyze("const int N = 2 * 3 + 1; int a = N << 1;")
        assert info.global_values["N"] == 7
        assert info.global_values["a"] == 14

    def test_array_size_from_const(self):
        _, info = analyze("const int N = 3; int a[N * 2];")
        assert info.globals["a"].ctype.size == 6

    def test_array_size_from_initializer(self):
        _, info = analyze("int a[] = {1, 2, 3};")
        assert info.globals["a"].ctype.size == 3

    def test_array_init_padding(self):
        _, info = analyze("float a[4] = {1.5};")
        assert info.global_values["a"] == [1.5, 0.0, 0.0, 0.0]

    def test_int_initializer_coerced_to_float(self):
        _, info = analyze("float a[2] = {1, 2};")
        assert info.global_values["a"] == [1.0, 2.0]

    def test_negative_const_expr(self):
        _, info = analyze("const int M = -(3 - 5); int x = M;")
        assert info.global_values["x"] == 2

    def test_too_many_initializers(self):
        with pytest.raises(SemanticError):
            analyze("int a[2] = {1, 2, 3};")

    def test_non_constant_global_init(self):
        with pytest.raises(SemanticError):
            analyze("int a; int b = a;")

    def test_zero_array_size(self):
        with pytest.raises(SemanticError):
            analyze("int a[0];")

    def test_division_by_zero_in_const(self):
        with pytest.raises(SemanticError):
            analyze("int a = 1 / 0;")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError):
            analyze("int a; float a;")


class TestTypeChecking:
    def test_int_float_promotion_inserts_cast(self):
        program, _ = analyze("float f(int a) { return a + 1.5; }")
        ret = program.functions[0].body.stmts[0]
        binop = ret.value
        assert isinstance(binop.left, cast.Cast)
        assert binop.ctype == FLOAT

    def test_comparison_yields_int(self):
        program, _ = analyze("int f(float a) { return a < 2.0; }")
        assert program.functions[0].body.stmts[0].value.ctype == INT

    def test_modulo_requires_ints(self):
        with pytest.raises(SemanticError):
            analyze("float f(float a) { return a % 2.0; }")

    def test_shift_requires_ints(self):
        with pytest.raises(SemanticError):
            analyze("int f(float a) { return 1 << a; }")

    def test_bitnot_requires_int(self):
        with pytest.raises(SemanticError):
            analyze("float f(float a) { return ~a; }")

    def test_float_index_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int g[4]; int f(float x) { return g[x]; }")

    def test_indexing_scalar_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int g; int f(void) { return g[0]; }")

    def test_assignment_conversion(self):
        program, _ = analyze("void f(void) { int x; x = 2.5; }")
        assign = program.functions[0].body.stmts[1].expr
        assert isinstance(assign.value, cast.Cast)
        assert assign.value.target == INT

    def test_return_conversion(self):
        program, _ = analyze("int f(void) { return 2.5; }")
        assert isinstance(program.functions[0].body.stmts[0].value, cast.Cast)

    def test_void_return_with_value_rejected(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { return 1; }")

    def test_missing_return_value_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { return; }")

    def test_array_in_arithmetic_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int a[4]; int f(void) { return a + 1; }")

    def test_assign_to_const_rejected(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { const int x = 1; x = 2; }")

    def test_void_call_in_expression_rejected(self):
        with pytest.raises(SemanticError):
            analyze("void g(void) { } int f(void) { return g() + 1; }")


class TestScoping:
    def test_undefined_variable(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { return nope; }")

    def test_undefined_function(self):
        with pytest.raises(SemanticError):
            analyze("int f(void) { return g(); }")

    def test_forward_function_reference_ok(self):
        analyze("int f(void) { return g(); } int g(void) { return 1; }")

    def test_inner_scope_shadowing(self):
        analyze("int f(int x) { { int y = x; } { float y = 1.0; } return x; }")

    def test_duplicate_in_same_scope(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { int x; int x; }")

    def test_duplicate_parameter(self):
        with pytest.raises(SemanticError):
            analyze("void f(int a, int a) { }")

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { break; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { continue; }")

    def test_redefining_function(self):
        with pytest.raises(SemanticError):
            analyze("void f(void) { } int f(void) { return 1; }")


class TestCalls:
    def test_arity_mismatch(self):
        with pytest.raises(SemanticError):
            analyze("int g(int a) { return a; } int f(void) { return g(); }")

    def test_scalar_arg_conversion(self):
        program, _ = analyze(
            "float g(float a) { return a; } float f(void) { return g(1); }"
        )
        call = program.functions[1].body.stmts[0].value
        assert isinstance(call.args[0], cast.Cast)

    def test_array_argument(self):
        analyze("int g(int a[]) { return a[0]; }"
                "int b[4]; int f(void) { return g(b); }")

    def test_scalar_for_array_param_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int g(int a[]) { return a[0]; }"
                    "int f(void) { return g(1); }")

    def test_wrong_element_type_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int g(int a[]) { return a[0]; }"
                    "float b[4]; int f(void) { return g(b); }")


class TestCommBuiltins:
    def test_send_ok(self):
        analyze("int b[8]; void f(void) { send(1, b, 8); }")

    def test_recv_ok(self):
        analyze("float b[8]; void f(void) { recv(2, b, 4); }")

    def test_wrong_arity(self):
        with pytest.raises(SemanticError):
            analyze("int b[8]; void f(void) { send(1, b); }")

    def test_scalar_buffer_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int b; void f(void) { send(1, b, 1); }")

    def test_float_channel_rejected(self):
        with pytest.raises(SemanticError):
            analyze("int b[4]; void f(void) { send(1.5, b, 1); }")

    def test_cannot_define_function_named_send(self):
        with pytest.raises(SemanticError):
            analyze("void send(void) { }")
