"""Recording-hook transparency: a recorded simulation is observably
identical to an unrecorded one, across engines, granularities and PUMs."""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.pum import microblaze, superscalar2
from repro.pum.library import dct_hw
from repro.simkernel import OP_RECV, OP_SEND, OP_WAIT, TraceRecorder
from repro.simkernel.kernel import SimulationError
from repro.tlm import Design, generate_tlm
from repro.simtrace import capture_tlm_trace

PRESETS = {
    "microblaze": microblaze,
    "superscalar2": superscalar2,
    "dct_hw": dct_hw,
}


def _pipeline_design(preset, n_msgs, payload, n_iters):
    """Producer → consumer over one shared bus, with private computation on
    both sides — exercises waits, sends, receives and bus contention."""
    design = Design("cap-%s-%d-%d-%d" % (preset, n_msgs, payload, n_iters))
    design.add_pe("cpu", PRESETS[preset]())
    design.add_pe("hw", microblaze(2048, 2048))
    design.add_bus("bus", words_per_cycle=2, arbitration_cycles=2)
    design.add_channel(1, "req", "bus")
    design.add_channel(2, "rsp", "bus")
    design.add_process("prod", """
    int buf[16];
    int main(void) {
      int s = 0;
      for (int m = 0; m < %d; m++) {
        for (int i = 0; i < %d; i++) s += i * 3;
        send(1, buf, %d);
        recv(2, buf, 2);
      }
      return s;
    }""" % (n_msgs, n_iters, payload), "main", "cpu")
    design.add_process("cons", """
    int buf[16];
    int main(void) {
      int s = 0;
      for (int m = 0; m < %d; m++) {
        recv(1, buf, %d);
        for (int i = 0; i < 17; i++) s += i;
        send(2, buf, 2);
      }
      return s;
    }""" % (n_msgs, payload), "main", "hw")
    return design


class TestRecordingTransparency:
    @settings(max_examples=20, deadline=None)
    @given(
        preset=st.sampled_from(sorted(PRESETS)),
        engine=st.sampled_from(["coroutine", "thread"]),
        granularity=st.sampled_from(["transaction", "block", "quantum"]),
        n_msgs=st.integers(min_value=1, max_value=4),
        payload=st.integers(min_value=1, max_value=16),
        n_iters=st.integers(min_value=0, max_value=40),
    )
    @example(preset="microblaze", engine="coroutine",
             granularity="transaction", n_msgs=1, payload=1, n_iters=0)
    @example(preset="superscalar2", engine="thread", granularity="block",
             n_msgs=4, payload=16, n_iters=40)
    @example(preset="dct_hw", engine="coroutine", granularity="quantum",
             n_msgs=2, payload=8, n_iters=13)
    def test_recording_is_bit_transparent(self, preset, engine, granularity,
                                          n_msgs, payload, n_iters):
        design = _pipeline_design(preset, n_msgs, payload, n_iters)
        model = generate_tlm(design, timed=True, granularity=granularity,
                             engine=engine)
        plain = model.run()
        recorded = model.run(record=TraceRecorder())
        assert recorded.makespan_cycles == plain.makespan_cycles
        assert recorded.end_time_ns == plain.end_time_ns
        assert recorded.kernel_stats == plain.kernel_stats
        assert {n: p.cycles for n, p in recorded.processes.items()} == {
            n: p.cycles for n, p in plain.processes.items()
        }
        assert {n: p.transactions for n, p in recorded.processes.items()} == {
            n: p.transactions for n, p in plain.processes.items()
        }


class TestRecorder:
    def test_op_stream_shape(self):
        design = _pipeline_design("microblaze", 2, 4, 10)
        recorder = TraceRecorder()
        generate_tlm(design, timed=True).run(record=recorder)
        assert set(recorder.ops) == {"prod", "cons"}
        seqs = [seq for ops in recorder.ops.values()
                for seq, _, _, _ in ops]
        assert sorted(seqs) == list(range(len(seqs)))  # global total order
        prod_ops = [op for _, op, _, _ in recorder.ops["prod"]]
        assert prod_ops.count(OP_SEND) == 2
        assert prod_ops.count(OP_RECV) == 2
        assert OP_WAIT in prod_ops
        sends = [(a, b) for _, op, a, b in recorder.ops["prod"]
                 if op == OP_SEND]
        assert sends == [(1, 4), (1, 4)]  # channel id, payload words

    def test_wait_cycles_match_process_totals(self):
        # Every accumulated delay reaches the kernel through a recorded
        # sync, so the op stream's wait sum equals the process total.
        design = _pipeline_design("microblaze", 3, 2, 25)
        trace, result = capture_tlm_trace(design)
        for name, proc_trace in trace.processes.items():
            assert proc_trace.wait_cycles() == result.process(name).cycles

    def test_recording_rejects_fault_injection(self):
        from repro.faults import FaultScenario

        design = _pipeline_design("microblaze", 1, 1, 1)
        model = generate_tlm(design, timed=True)
        with pytest.raises(SimulationError):
            model.run(faults=FaultScenario(), record=TraceRecorder())


class TestCaptureEntryPoint:
    def test_trace_stored_under_signature(self):
        from repro import artifacts
        from repro.simtrace import TRACE_KIND, replay_signature

        artifacts.reset_default_store()
        try:
            design = _pipeline_design("microblaze", 1, 2, 5)
            trace, _ = capture_tlm_trace(design)
            store = artifacts.default_store()
            assert trace.signature == replay_signature(design)
            assert store.get(TRACE_KIND, trace.signature) is trace
        finally:
            artifacts.reset_default_store()

    def test_signature_ignores_replay_axes(self):
        from repro.simtrace import replay_signature

        base = _pipeline_design("microblaze", 1, 2, 5)
        tweaked = _pipeline_design("microblaze", 1, 2, 5)
        tweaked.buses["bus"].words_per_cycle = 4
        tweaked.buses["bus"].arbitration_cycles = 1
        tweaked.pes["cpu"].pum.frequency_mhz = 250.0
        assert replay_signature(base) == replay_signature(tweaked)
        other_code = _pipeline_design("microblaze", 1, 2, 6)
        assert replay_signature(base) != replay_signature(other_code)
        other_pum = _pipeline_design("superscalar2", 1, 2, 5)
        assert replay_signature(base) != replay_signature(other_pum)

    def test_approx_signature_ignores_pums(self):
        from repro.simtrace import approx_signature

        a = _pipeline_design("microblaze", 1, 2, 5)
        b = _pipeline_design("superscalar2", 1, 2, 5)
        assert approx_signature(a) == approx_signature(b)

    def test_disk_round_trip(self, tmp_path):
        from repro.artifacts import ArtifactStore
        from repro.simtrace import TRACE_KIND, SimTrace

        design = _pipeline_design("microblaze", 2, 3, 7)
        store = ArtifactStore(directory=str(tmp_path))
        trace, _ = capture_tlm_trace(design, store=store)
        reloaded = ArtifactStore(directory=str(tmp_path)).get(
            TRACE_KIND, trace.signature
        )
        assert isinstance(reloaded, SimTrace)
        assert reloaded.to_dict() == trace.to_dict()


class TestArbitratedCapture:
    """Recording an *uncontended* arbitrated design — previously refused
    outright — now succeeds and logs the per-bus grant streams."""

    def _arbitrated_mp3(self):
        from repro.apps.mp3 import Mp3Params, build_design

        design, _ = build_design(
            "SW+1",
            Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2),
            n_frames=1, seed=3,
        )
        for bus in design.buses.values():
            bus.policy = "fifo"
        return design

    def test_uncontended_arbitrated_design_records(self, tmp_path):
        """The SW+1 pipeline is effectively uncontended (see
        tests/tlm/test_contention.py::TestMp3FastPath), so every grant is a
        fast-path grant and the recording goes through."""
        from repro.artifacts import ArtifactStore

        store = ArtifactStore(directory=str(tmp_path))
        trace, result = capture_tlm_trace(self._arbitrated_mp3(), store=store)
        assert result.makespan_cycles > 0
        assert trace.grants  # the armed capture logged grant streams
        for bus_name, stream in trace.grants.items():
            assert stream  # (seq, master, n_words, when_ns) tuples
            seqs = [g[0] for g in stream]
            assert seqs == sorted(seqs)
            assert all(g[2] > 0 for g in stream)

    def test_recorded_arbitrated_trace_replays_bit_identically(self,
                                                               tmp_path):
        from repro.artifacts import ArtifactStore
        from repro.simtrace import replay_tlm

        store = ArtifactStore(directory=str(tmp_path))
        design = self._arbitrated_mp3()
        trace, result = capture_tlm_trace(design, store=store)
        outcome = replay_tlm(trace, design)
        assert outcome.makespan_cycles == result.makespan_cycles
        assert outcome.end_time_ns == result.end_time_ns

    def test_grants_survive_serialization(self, tmp_path):
        from repro.artifacts import ArtifactStore
        from repro.simtrace import SimTrace

        store = ArtifactStore(directory=str(tmp_path))
        trace, _ = capture_tlm_trace(self._arbitrated_mp3(), store=store)
        clone = SimTrace.from_dict(trace.to_dict())
        assert clone.grants == trace.grants

    def test_contended_capture_still_refused(self):
        """Contention makes the grant order load-dependent; the capture
        aborts at the first queued grant rather than freeze one order in."""
        design = Design("contended-capture")
        design.add_bus("bus", policy="fifo")
        for pair in (0, 1):
            design.add_pe("cpu%d" % pair, microblaze(8192, 4096))
            design.add_pe("hw%d" % pair, microblaze(2048, 2048))
            design.add_channel(1 + pair, "req%d" % pair, "bus")
            design.add_process("prod%d" % pair, """
            int b[64];
            int main(void) {
              for (int m = 0; m < 4; m++) send(%d, b, 64);
              return 0;
            }""" % (1 + pair), "main", "cpu%d" % pair)
            design.add_process("cons%d" % pair, """
            int b[64];
            void main(void) {
              for (int m = 0; m < 4; m++) recv(%d, b, 64);
            }""" % (1 + pair), "main", "hw%d" % pair)
        with pytest.raises(SimulationError) as exc_info:
            capture_tlm_trace(design)
        assert "load-dependent" in str(exc_info.value)
