"""Replay-engine correctness: scalar bit-identity, vectorized == scalar ==
kernel across rescaled platform grids, and conservative fallbacks."""

import itertools

import pytest

from repro.pum import microblaze
from repro.rtos import RTOSModel
from repro.tlm import Design, generate_tlm
from repro.simtrace import (
    SimTraceError,
    capture_tlm_trace,
    process_delay_totals,
    replay_many,
    replay_tlm,
)

PRODUCER = """
int buf[16];
int main(void) {
  int s = 0;
  for (int m = 0; m < %d; m++) {
    for (int i = 0; i < %d; i++) s += i * 3;
    send(1, buf, %d);
    recv(2, buf, 2);
  }
  return s;
}"""

CONSUMER = """
int buf[16];
int main(void) {
  int s = 0;
  for (int m = 0; m < %d; m++) {
    recv(1, buf, %d);
    for (int i = 0; i < 9; i++) s += i;
    send(2, buf, 2);
  }
  return s;
}"""


def _pipeline(n_msgs=3, payload=6, n_iters=20, wpc=1, arb=2,
              cpu_mhz=None, hw_mhz=None, icache=8192, dcache=4096):
    design = Design("rp-%d-%d-%d" % (n_msgs, payload, n_iters))
    design.add_pe("cpu", microblaze(icache, dcache))
    design.add_pe("hw", microblaze(2048, 2048))
    design.add_bus("bus", words_per_cycle=wpc, arbitration_cycles=arb)
    design.add_channel(1, "req", "bus")
    design.add_channel(2, "rsp", "bus")
    design.add_process("prod", PRODUCER % (n_msgs, n_iters, payload),
                       "main", "cpu")
    design.add_process("cons", CONSUMER % (n_msgs, payload),
                       "main", "hw")
    if cpu_mhz is not None:
        design.pes["cpu"].pum.frequency_mhz = cpu_mhz
    if hw_mhz is not None:
        design.pes["hw"].pum.frequency_mhz = hw_mhz
    return design


def _simulate(design):
    return generate_tlm(design, timed=True).run()


class TestScalarReplay:
    def test_identity_replay_is_bit_identical(self):
        trace, base = capture_tlm_trace(_pipeline())
        outcome = replay_tlm(trace, _pipeline())
        assert outcome.makespan_cycles == base.makespan_cycles
        assert outcome.end_time_ns == base.end_time_ns
        assert outcome.per_process_cycles == {
            n: base.process(n).cycles for n in trace.processes
        }

    @pytest.mark.parametrize("wpc,arb,cpu_mhz", [
        (4, 1, None),       # wider, cheaper bus
        (1, 7, None),       # pricier arbitration
        (2, 2, 125.0),      # faster CPU clock
        (1, 2, 25.0),       # much slower CPU clock
        (8, 0, 250.0),      # free arbitration + wide bus + fast clock
    ])
    def test_rescaled_point_matches_kernel(self, wpc, arb, cpu_mhz):
        trace, _ = capture_tlm_trace(_pipeline())
        target = _pipeline(wpc=wpc, arb=arb, cpu_mhz=cpu_mhz)
        reference = _simulate(target)
        outcome = replay_tlm(trace, target)
        assert outcome.makespan_cycles == reference.makespan_cycles
        assert outcome.end_time_ns == reference.end_time_ns

    def test_rtos_design_replays_bit_identically(self):
        def rtos_design(cs, wpc):
            design = Design("rtos-rp")
            design.add_pe("cpu", microblaze(8192, 4096),
                          rtos=RTOSModel(context_switch_cycles=cs))
            design.add_pe("hw", microblaze(2048, 2048))
            design.add_bus("bus", words_per_cycle=wpc)
            design.add_channel(1, "req", "bus")
            design.add_channel(2, "rsp", "bus")
            design.add_process("prod", PRODUCER % (3, 15, 4), "main", "cpu")
            design.add_process("side", """
            int main(void) {
              int s = 0;
              for (int i = 0; i < 50; i++) s += i;
              return s;
            }""", "main", "cpu")
            design.add_process("cons", CONSUMER % (3, 4), "main", "hw")
            return design

        trace, _ = capture_tlm_trace(rtos_design(cs=120, wpc=1))
        target = rtos_design(cs=15, wpc=4)
        reference = _simulate(target)
        outcome = replay_tlm(trace, target)
        assert outcome.makespan_cycles == reference.makespan_cycles
        assert outcome.end_time_ns == reference.end_time_ns

    def test_approximate_tier_tracks_cache_change(self):
        source = _pipeline(icache=8192, dcache=4096)
        target = _pipeline(icache=2048, dcache=2048)
        trace, _ = capture_tlm_trace(source)
        totals = process_delay_totals(target)
        scales = {
            name: totals[name] / trace.delay_totals[name]
            for name in totals
        }
        outcome = replay_tlm(trace, target, delay_scales=scales)
        reference = _simulate(target)
        error = abs(outcome.makespan_cycles - reference.makespan_cycles)
        assert error / reference.makespan_cycles < 0.05

    def test_incompatible_design_rejected(self):
        trace, _ = capture_tlm_trace(_pipeline())
        moved = _pipeline()
        moved.processes["prod"].pe_name = "hw"
        with pytest.raises(SimTraceError):
            replay_tlm(trace, moved)

        renamed = Design("other")
        renamed.add_pe("cpu", microblaze())
        renamed.add_process("alien", "int main(void){return 0;}",
                            "main", "cpu")
        with pytest.raises(SimTraceError):
            replay_tlm(trace, renamed)


class TestVectorizedReplay:
    def test_grid_matches_kernel_everywhere(self):
        trace, _ = capture_tlm_trace(_pipeline())
        grid = [
            _pipeline(wpc=w, arb=a, cpu_mhz=mhz)
            for w, a, mhz in itertools.product(
                (1, 2, 4), (1, 2), (None, 125.0)
            )
        ]
        outcomes, stats = replay_many(trace, grid)
        assert stats["vectorized"] > 0
        for design, outcome in zip(grid, outcomes):
            reference = _simulate(design)
            assert outcome.makespan_cycles == reference.makespan_cycles
            assert outcome.end_time_ns == reference.end_time_ns

    def test_vectorized_agrees_with_scalar(self):
        trace, _ = capture_tlm_trace(_pipeline())
        grid = [_pipeline(wpc=w, arb=a)
                for w, a in itertools.product((1, 2, 4, 8), (0, 1, 3))]
        vectorized, stats = replay_many(trace, grid)
        scalar, _ = replay_many(trace, grid, vectorize=False)
        assert stats["vectorized"] + stats["scalar"] == len(grid)
        for vec, sca in zip(vectorized, scalar):
            assert vec.makespan_cycles == sca.makespan_cycles
            assert vec.end_time_ns == sca.end_time_ns
            assert vec.per_process_cycles == sca.per_process_cycles

    def test_request_order_inversion_falls_back_to_scalar(self):
        # Two producers race for one bus.  Slowing the first producer's PE
        # inverts the recorded request order, which the vectorized model
        # must flag — the point still comes back bit-identical via the
        # scalar engine.
        def racing(mhz_a=100.0, mhz_b=100.0):
            design = Design("race")
            design.add_pe("pa", microblaze(2048, 2048))
            design.add_pe("pb", microblaze(2048, 2048))
            design.add_pe("sink", microblaze(2048, 2048))
            design.add_bus("bus", words_per_cycle=1, arbitration_cycles=2)
            design.add_channel(1, "ca", "bus")
            design.add_channel(2, "cb", "bus")
            design.add_process("a", """
            int buf[8];
            int main(void) {
              int s = 0;
              for (int i = 0; i < 5; i++) s += i;
              send(1, buf, 8);
              return s;
            }""", "main", "pa")
            design.add_process("b", """
            int buf[8];
            int main(void) {
              int s = 0;
              for (int i = 0; i < 60; i++) s += i * 5;
              send(2, buf, 8);
              return s;
            }""", "main", "pb")
            design.add_process("c", """
            int buf[8];
            int main(void) {
              recv(1, buf, 8);
              recv(2, buf, 8);
              return 0;
            }""", "main", "sink")
            design.pes["pa"].pum.frequency_mhz = mhz_a
            design.pes["pb"].pum.frequency_mhz = mhz_b
            return design

        trace, _ = capture_tlm_trace(racing())
        # Lane 0 keeps the recorded ordering; lane 1 slows producer a
        # enough (20x) that b's request now lands first.
        grid = [racing(), racing(mhz_a=5.0)]
        outcomes, stats = replay_many(trace, grid)
        assert stats["scalar"] >= 1
        for design, outcome in zip(grid, outcomes):
            reference = _simulate(design)
            assert outcome.makespan_cycles == reference.makespan_cycles
            assert outcome.end_time_ns == reference.end_time_ns

    def test_rtos_points_never_vectorize(self):
        def shared(cs):
            design = Design("rtos-vec")
            design.add_pe("cpu", microblaze(4096, 4096),
                          rtos=RTOSModel(context_switch_cycles=cs))
            design.add_pe("hw", microblaze(2048, 2048))
            design.add_bus("bus")
            design.add_channel(1, "req", "bus")
            design.add_channel(2, "rsp", "bus")
            design.add_process("prod", PRODUCER % (2, 10, 4), "main", "cpu")
            design.add_process("mon", "int main(void){return 1;}",
                               "main", "cpu")
            design.add_process("cons", CONSUMER % (2, 4), "main", "hw")
            return design

        trace, _ = capture_tlm_trace(shared(100))
        outcomes, stats = replay_many(trace, [shared(100), shared(10)])
        assert stats["vectorized"] == 0
        assert stats["scalar"] == 2
        for design, outcome in zip([shared(100), shared(10)], outcomes):
            assert outcome.makespan_cycles == _simulate(design).makespan_cycles
