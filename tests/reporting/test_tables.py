"""Tests for table formatting and error metrics."""

import pytest

from repro.reporting import Table, fmt_cycles, fmt_seconds, pct_error


class TestMetrics:
    def test_pct_error_signed(self):
        assert pct_error(110, 100) == pytest.approx(10.0)
        assert pct_error(90, 100) == pytest.approx(-10.0)

    def test_pct_error_zero_reference(self):
        with pytest.raises(ValueError):
            pct_error(1, 0)

    def test_fmt_cycles_paper_style(self):
        assert fmt_cycles(27_220_000) == "27.22M"
        assert fmt_cycles(4_410_000) == "4.410M"
        assert fmt_cycles(52_234) == "52.2k"
        assert fmt_cycles(999) == "999"

    def test_fmt_seconds(self):
        assert fmt_seconds(0.0000005) == "0us"
        assert fmt_seconds(0.0125).endswith("ms")
        assert fmt_seconds(3.5) == "3.50s"
        assert fmt_seconds(150) == "2.5min"


class TestTable:
    def test_render_alignment(self):
        table = Table(["design", "cycles"], title="T")
        table.add_row("SW", 123)
        table.add_row("SW+4", 7)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "design" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_cell_count_checked(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_is_render(self):
        table = Table(["x"])
        table.add_row(1)
        assert str(table) == table.render()
