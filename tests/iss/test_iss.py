"""Unit tests for the interpreted ISS baseline."""

import pytest

from repro.api import compile_cmini
from repro.cdfg.interp import QueueComm
from repro.isa import compile_program
from repro.iss import ISS, ISSError, assumed_miss_rate


def image_of(source, entry="main", args=()):
    return compile_program(compile_cmini(source), entry, args)


LOOP = """
int main(void) {
  int s = 0;
  for (int i = 0; i < 50; i++) s += i * 2;
  return s;
}"""


class TestMissCurve:
    def test_no_cache_is_certain_miss(self):
        assert assumed_miss_rate(0) == 1.0

    def test_curve_is_monotone_decreasing(self):
        sizes = [0, 1024, 2048, 4096, 8192, 16384, 32768, 65536]
        rates = [assumed_miss_rate(s) for s in sizes]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_interpolation_between_points(self):
        mid = assumed_miss_rate(3072)
        assert assumed_miss_rate(4096) < mid < assumed_miss_rate(2048)

    def test_floor_beyond_largest(self):
        assert assumed_miss_rate(10**6) == assumed_miss_rate(32 * 1024)


class TestTiming:
    def test_cycles_increase_without_caches(self):
        image = image_of(LOOP)
        cached = ISS(image, 32768, 16384).run()
        uncached = ISS(image, 0, 0).run()
        assert uncached.cycles > cached.cycles
        assert uncached.n_instrs == cached.n_instrs

    def test_cycles_monotone_in_cache_size(self):
        image = image_of(LOOP)
        previous = None
        for size in (0, 2048, 8192, 32768):
            cycles = ISS(image, size, size).run().cycles
            if previous is not None:
                assert cycles <= previous
            previous = cycles

    def test_class_counts_recorded(self):
        result = ISS(image_of(LOOP)).run()
        assert result.class_counts["alu"] > 0
        assert result.class_counts["branch"] > 0
        assert sum(result.class_counts.values()) == result.n_instrs

    def test_expensive_ops_cost_more(self):
        div_img = image_of("""
        int main(void) {
          int s = 1000000;
          for (int i = 1; i < 50; i++) s /= 1;
          return s;
        }""")
        add_img = image_of("""
        int main(void) {
          int s = 1000000;
          for (int i = 1; i < 50; i++) s += 1;
          return s;
        }""")
        div_run = ISS(div_img).run()
        add_run = ISS(add_img).run()
        # Same shape of program; the divide version pays ~31 extra per iter.
        assert div_run.cycles > add_run.cycles + 40 * 25

    def test_instruction_budget_guard(self):
        image = image_of("int main(void) { while (1) { } return 0; }")
        with pytest.raises(ISSError):
            ISS(image, max_instrs=10_000).run()


class TestCommunication:
    class _Adapter:
        """Bridge the interpreter-style QueueComm to the ISS interface."""

        def __init__(self):
            self.queue = QueueComm()

        def send(self, chan, values):
            self.queue.send(chan, values)

        def recv(self, chan, count):
            return self.queue.recv(chan, count)

    def test_send_recv_round_trip(self):
        source = """
        int buf[4];
        int main(void) {
          for (int i = 0; i < 4; i++) buf[i] = (i + 1) * 11;
          send(2, buf, 4);
          recv(2, buf, 4);
          return buf[3];
        }"""
        adapter = self._Adapter()
        result = ISS(image_of(source), comm=adapter).run()
        assert result.return_value == 44

    def test_comm_without_handler_raises(self):
        source = "int b[2]; int main(void) { send(1, b, 2); return 0; }"
        with pytest.raises(ISSError):
            ISS(image_of(source)).run()


class TestDeliberateInaccuracy:
    """The ISS's documented accuracy profile against the cycle-true board."""

    def test_underestimates_with_no_cache(self):
        from repro.cycle import run_to_halt

        image = image_of(LOOP)
        iss_cycles = ISS(image, 0, 0).run().cycles
        board_cycles = run_to_halt(image, 0, 0).cycle
        assert iss_cycles < board_cycles  # canned penalty 10 < real 22

    def test_overestimates_with_large_caches(self):
        from repro.cycle import run_to_halt

        image = image_of(LOOP)
        iss_cycles = ISS(image, 32768, 32768).run().cycles
        board_cycles = run_to_halt(image, 32768, 32768).cycle
        assert iss_cycles > board_cycles  # floored miss rate
