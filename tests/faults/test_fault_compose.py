"""Fault injection composing with the sweep machinery (explore/search).

Resilience sweeps — "how does this platform ranking hold up under a flaky
bus?" — pass a :class:`FaultScenario` into :func:`repro.explore.explore`
or :func:`repro.search.search`.  The composition rules under test:

* ``faults=`` reaches every evaluation path (sequential, parallel worker,
  search stages) and perturbs cycle counts deterministically;
* the replay fast path **degrades cleanly to kernel runs**: trace
  recording is rejected under fault injection, so a fault-injected sweep
  with ``replay="auto"``/``"approx"`` skips the replay phase (recorded in
  ``replay_stats``) instead of capturing poisoned traces — and still
  produces results bit-identical to the plain ``replay="off"`` sweep;
* ``checkpoint=`` is refused outright: fault-perturbed cycle counts must
  never be restorable as clean results;
* a crash fault fails its own point (a failed :class:`PointResult`), not
  the sweep.
"""

import pytest

from repro.explore import CheckpointError, DesignPoint, explore
from repro.faults import ChannelFault, FaultScenario, ProcessFault
from repro.pum import dct_hw, microblaze
from repro.search import search
from repro.tlm import Design

CPU_SRC = """
int buf[8];
int total;
int main(void) {
  for (int f = 0; f < 2; f++) {
    for (int i = 0; i < 8; i++) buf[i] = f * 8 + i;
    send(1, buf, 8);
    recv(2, buf, 8);
    for (int i = 0; i < 8; i++) total += buf[i];
  }
  return total;
}
"""

HW_SRC = """
int data[8];
void main(void) {
  for (int f = 0; f < 2; f++) {
    recv(1, data, 8);
    for (int i = 0; i < 8; i++) data[i] = data[i] * 3 + 1;
    send(2, data, 8);
  }
}
"""


def _offload_design(name, arbitration=1):
    def build():
        design = Design(name)
        design.add_pe("cpu", microblaze(2048, 2048))
        design.add_pe("hw0", dct_hw())
        design.add_bus("bus0", arbitration_cycles=arbitration)
        design.add_channel(1, "req", "bus0")
        design.add_channel(2, "rsp", "bus0")
        design.add_process("sw", CPU_SRC, "main", "cpu")
        design.add_process("acc", HW_SRC, "main", "hw0")
        return design

    return build


def _points(n=2):
    return [
        DesignPoint("arb%d" % arb, _offload_design("arb%d" % arb, arb),
                    area=arb)
        for arb in range(1, n + 1)
    ]


def _slow_bus(cycles=50):
    return FaultScenario("slow-bus", faults=[
        ChannelFault("delay", "req", cycles=cycles),
    ])


class TestExploreWithFaults:
    def test_faults_perturb_every_point(self):
        clean = explore(_points())
        faulty = explore(_points(), faults=_slow_bus())
        assert not faulty.failures
        for c, f in zip(clean.results, faulty.results):
            assert f.makespan_cycles > c.makespan_cycles

    def test_fault_sweep_is_deterministic(self):
        first = explore(_points(), faults=_slow_bus())
        second = explore(_points(), faults=_slow_bus())
        assert ([r.makespan_cycles for r in first.results]
                == [r.makespan_cycles for r in second.results])

    def test_replay_degrades_to_kernel_runs(self):
        plain = explore(_points(), faults=_slow_bus())
        for mode in ("auto", "approx"):
            swept = explore(_points(), replay=mode, faults=_slow_bus())
            assert swept.replay_stats["mode"] == mode
            assert swept.replay_stats["skipped"] == "fault-injection"
            # No point was replayed; every result came from a kernel run
            # and matches the replay="off" sweep bit-for-bit.
            assert not any(r.replayed for r in swept.results)
            assert ([r.makespan_cycles for r in swept.results]
                    == [r.makespan_cycles for r in plain.results])

    def test_replay_without_faults_untouched(self):
        # The degrade path must not fire for clean sweeps.
        swept = explore(_points(), replay="auto")
        assert "skipped" not in (swept.replay_stats or {})

    def test_checkpoint_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError) as exc_info:
            explore(_points(), faults=_slow_bus(),
                    checkpoint=str(tmp_path / "ckpt.json"))
        assert "fault-injected" in str(exc_info.value)

    def test_crash_fault_fails_point_not_sweep(self):
        crash = FaultScenario("fatal", faults=[
            ProcessFault("crash", "sw", at_cycle=0),
        ])
        result = explore(_points(), faults=crash)
        assert len(result.failures) == len(result.results)
        for failed in result.failures:
            assert "injected fault" in failed.error
        assert result.ranked() == []

    def test_parallel_workers_apply_faults(self):
        clean = explore(_points(3))
        faulty = explore(_points(3), workers=2, faults=_slow_bus())
        assert not faulty.failures
        for c, f in zip(clean.results, faulty.results):
            assert f.makespan_cycles > c.makespan_cycles
        # Same counts as the sequential fault sweep: determinism holds
        # across the process boundary.
        sequential = explore(_points(3), faults=_slow_bus())
        assert ([r.makespan_cycles for r in faulty.results]
                == [r.makespan_cycles for r in sequential.results])


class TestSearchWithFaults:
    def test_faults_forwarded_to_exact_stage(self):
        clean = search(_points(2), stages="")
        faulty = search(_points(2), stages="", faults=_slow_bus())
        assert not faulty.exploration.failures
        for c, f in zip(clean.exploration.results,
                        faulty.exploration.results):
            assert f.makespan_cycles > c.makespan_cycles

    def test_checkpoint_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError):
            search(_points(2), stages="", faults=_slow_bus(),
                   checkpoint=str(tmp_path / "ckpt.json"))
