"""Scenario construction, validation and JSON round-trip tests."""

import json

import pytest

from repro.faults import (
    ChannelFault,
    FaultScenario,
    FaultScenarioError,
    ProcessFault,
    SCENARIO_FORMAT_VERSION,
    load_scenario,
    save_scenario,
    scenario_from_dict,
)


class TestChannelFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultScenarioError):
            ChannelFault("mangle", "c0")

    def test_rate_out_of_range(self):
        with pytest.raises(FaultScenarioError):
            ChannelFault("corrupt", "c0", rate=1.5)
        with pytest.raises(FaultScenarioError):
            ChannelFault("corrupt", "c0", rate=-0.1)

    def test_delay_needs_cycles(self):
        with pytest.raises(FaultScenarioError):
            ChannelFault("delay", "c0", cycles=0)

    def test_max_events_positive(self):
        with pytest.raises(FaultScenarioError):
            ChannelFault("drop", "c0", max_events=0)

    def test_matches_name_or_id(self):
        by_name = ChannelFault("corrupt", "req")
        assert by_name.matches(1, "req")
        assert not by_name.matches(1, "rsp")
        by_id = ChannelFault("corrupt", 2)
        assert by_id.matches(2, "rsp")
        assert not by_id.matches(1, "req")


class TestProcessFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultScenarioError):
            ProcessFault("explode", "cpu")

    def test_negative_cycle_rejected(self):
        with pytest.raises(FaultScenarioError):
            ProcessFault("stall", "cpu", at_cycle=-1, cycles=10)

    def test_stall_needs_cycles(self):
        with pytest.raises(FaultScenarioError):
            ProcessFault("stall", "cpu", cycles=0)

    def test_crash_mode_validated(self):
        with pytest.raises(FaultScenarioError):
            ProcessFault("crash", "cpu", mode="segfault")
        for mode in ("error", "halt"):
            ProcessFault("crash", "cpu", mode=mode)


class TestScenario:
    def test_rejects_non_fault_entries(self):
        with pytest.raises(FaultScenarioError):
            FaultScenario(faults=["corrupt everything"])

    def test_fault_family_accessors(self):
        scenario = FaultScenario(faults=[
            ChannelFault("drop", "c0"),
            ProcessFault("stall", "cpu", cycles=5),
        ])
        assert len(scenario.channel_faults) == 1
        assert len(scenario.process_faults) == 1

    def test_dict_round_trip(self):
        scenario = FaultScenario("chaos", seed=7, faults=[
            ChannelFault("corrupt", "req", rate=0.25, xor_mask=0xFF),
            ChannelFault("delay", 2, cycles=20, max_events=3),
            ChannelFault("drop", "rsp", rate=0.1),
            ProcessFault("stall", "cpu", at_cycle=100, cycles=50),
            ProcessFault("crash", "hw0", at_cycle=500, mode="halt"),
        ])
        restored = scenario_from_dict(scenario.to_dict())
        assert restored.name == "chaos" and restored.seed == 7
        assert restored.to_dict() == scenario.to_dict()

    def test_json_file_round_trip(self, tmp_path):
        scenario = FaultScenario("disk", seed=3, faults=[
            ChannelFault("delay", "req", rate=0.5, cycles=10),
        ])
        path = str(tmp_path / "scenario.json")
        save_scenario(scenario, path)
        loaded = load_scenario(path)
        assert loaded.to_dict() == scenario.to_dict()
        # the on-disk form is plain versioned JSON
        data = json.loads(open(path).read())
        assert data["version"] == SCENARIO_FORMAT_VERSION


class TestScenarioErrors:
    def test_missing_file(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(FaultScenarioError) as exc_info:
            load_scenario(path)
        assert path in str(exc_info.value)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken")
        with pytest.raises(FaultScenarioError) as exc_info:
            load_scenario(str(path))
        assert "not valid JSON" in str(exc_info.value)

    def test_unknown_fault_type_names_index(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({
            "version": 1,
            "faults": [{"type": "drop", "channel": "c0"},
                       {"type": "gremlin", "channel": "c0"}],
        }))
        with pytest.raises(FaultScenarioError) as exc_info:
            load_scenario(str(path))
        assert "faults[1]" in str(exc_info.value)

    def test_missing_field_names_index(self):
        with pytest.raises(FaultScenarioError) as exc_info:
            scenario_from_dict({"faults": [{"type": "drop"}]})
        assert "channel" in str(exc_info.value)
        assert "faults[0]" in str(exc_info.value)

    def test_unsupported_version(self):
        with pytest.raises(FaultScenarioError):
            scenario_from_dict({"version": 99, "faults": []})

    def test_non_integer_seed(self):
        with pytest.raises(FaultScenarioError):
            scenario_from_dict({"seed": "lucky", "faults": []})

    def test_faults_must_be_list(self):
        with pytest.raises(FaultScenarioError):
            scenario_from_dict({"faults": {"type": "drop"}})
