"""Fault-injection behaviour on real TLM and PCAM runs.

The central claims under test:

* **pay-for-what-you-use** — with no scenario (or one that never fires),
  cycle counts are bit-identical to the fault-free run;
* **determinism** — same seed + scenario gives identical counters and
  makespans across repeated runs, across TLM engines, and (for counters)
  across the TLM/PCAM boundary;
* the four fault families actually do what the docs say (corrupt changes
  data but not timing; delay/stall add time; drop and halt starve peers
  into a named deadlock; crash aborts with a structured error).
"""

import pytest

from repro.cycle import run_pcam
from repro.faults import (
    ChannelFault,
    FaultInjectedError,
    FaultScenario,
    FaultScenarioError,
    ProcessFault,
)
from repro.pum import dct_hw, microblaze
from repro.simkernel import DeadlockError, SimulationError
from repro.tlm import Design, generate_tlm

CPU_SRC = """
int buf[8];
int total;
int main(void) {
  for (int f = 0; f < 3; f++) {
    for (int i = 0; i < 8; i++) buf[i] = f * 8 + i;
    send(1, buf, 8);
    recv(2, buf, 8);
    for (int i = 0; i < 8; i++) total += buf[i];
  }
  return total;
}
"""

HW_SRC = """
int data[8];
void main(void) {
  for (int f = 0; f < 3; f++) {
    recv(1, data, 8);
    for (int i = 0; i < 8; i++) data[i] = data[i] * 3 + 1;
    send(2, data, 8);
  }
}
"""


def two_pe_design():
    design = Design("faults-test")
    design.add_pe("cpu", microblaze(2048, 2048))
    design.add_pe("hw0", dct_hw())
    design.add_bus("bus0")
    design.add_channel(1, "req", "bus0")
    design.add_channel(2, "rsp", "bus0")
    design.add_process("sw", CPU_SRC, "main", "cpu")
    design.add_process("acc", HW_SRC, "main", "hw0")
    return design


def run_tlm(faults=None, engine="coroutine"):
    model = generate_tlm(two_pe_design(), timed=True, engine=engine)
    return model.run(faults=faults)


def expected_total():
    acc = 0
    for f in range(3):
        for i in range(8):
            acc += (f * 8 + i) * 3 + 1
    return acc


class TestPayForWhatYouUse:
    def test_empty_scenario_is_bit_identical(self):
        clean = run_tlm()
        empty = run_tlm(faults=FaultScenario("empty"))
        assert empty.makespan_cycles == clean.makespan_cycles
        assert empty.fault_stats["total_events"] == 0

    def test_zero_rate_faults_are_bit_identical(self):
        clean = run_tlm()
        quiet = FaultScenario("quiet", seed=1, faults=[
            ChannelFault("corrupt", "req", rate=0.0),
            ChannelFault("delay", "rsp", rate=0.0, cycles=100),
        ])
        faulty = run_tlm(faults=quiet)
        assert faulty.makespan_cycles == clean.makespan_cycles
        assert faulty.fault_stats["total_events"] == 0

    def test_no_scenario_leaves_fault_stats_empty(self):
        assert run_tlm().fault_stats == {}

    def test_pcam_empty_scenario_is_bit_identical(self):
        clean = run_pcam(two_pe_design())
        empty = run_pcam(two_pe_design(), faults=FaultScenario("empty"))
        assert empty.makespan_cycles == clean.makespan_cycles
        assert empty.fault_stats["total_events"] == 0


class TestCorrupt:
    def test_corrupt_changes_data_not_timing(self):
        clean = run_tlm()
        scenario = FaultScenario("flip", faults=[
            ChannelFault("corrupt", "req", xor_mask=0xFF),
        ])
        faulty = run_tlm(faults=scenario)
        # All 3 req transactions corrupted, 8 words each.
        assert faulty.fault_stats["corrupted_transactions"] == 3
        assert faulty.fault_stats["corrupted_words"] == 24
        # Payloads changed, so the consumer computes a different total...
        assert (faulty.process("sw").return_value
                != clean.process("sw").return_value)
        # ...but corruption costs no time: makespans stay identical.
        assert faulty.makespan_cycles == clean.makespan_cycles

    def test_corrupt_is_involution(self):
        # XOR-corrupting both directions with the same mask restores the
        # arithmetic on already-linear stages only in special cases; here we
        # just check double-corruption of the same channel composes masks.
        scenario = FaultScenario("double", faults=[
            ChannelFault("corrupt", "req", xor_mask=0x0F),
            ChannelFault("corrupt", "req", xor_mask=0x0F),
        ])
        clean = run_tlm()
        faulty = run_tlm(faults=scenario)
        assert (faulty.process("sw").return_value
                == clean.process("sw").return_value)


class TestDelay:
    def test_delay_increases_makespan(self):
        clean = run_tlm()
        scenario = FaultScenario("slow", faults=[
            ChannelFault("delay", "req", cycles=50),
        ])
        faulty = run_tlm(faults=scenario)
        assert faulty.fault_stats["delayed_transactions"] == 3
        assert faulty.fault_stats["delay_cycles"] == 150
        assert faulty.makespan_cycles > clean.makespan_cycles

    def test_max_events_caps_firings(self):
        scenario = FaultScenario("capped", faults=[
            ChannelFault("delay", "req", cycles=50, max_events=1),
        ])
        faulty = run_tlm(faults=scenario)
        assert faulty.fault_stats["delayed_transactions"] == 1


class TestDrop:
    def test_drop_starves_receiver_into_named_deadlock(self):
        scenario = FaultScenario("lossy", faults=[
            ChannelFault("drop", "req", max_events=1),
        ])
        with pytest.raises(DeadlockError) as exc_info:
            run_tlm(faults=scenario)
        # The accelerator never gets the first frame's words back.
        assert "acc" in str(exc_info.value)


class TestProcessFaults:
    def test_stall_adds_time(self):
        clean = run_tlm()
        scenario = FaultScenario("hiccup", faults=[
            ProcessFault("stall", "sw", at_cycle=0, cycles=500),
        ])
        faulty = run_tlm(faults=scenario)
        assert faulty.fault_stats["stalls"] == 1
        assert faulty.fault_stats["stall_cycles"] == 500
        assert faulty.makespan_cycles > clean.makespan_cycles

    def test_crash_error_mode_aborts_with_structured_error(self):
        scenario = FaultScenario("fatal", faults=[
            ProcessFault("crash", "sw", at_cycle=0),
        ])
        with pytest.raises(SimulationError) as exc_info:
            run_tlm(faults=scenario)
        assert "crashed by injected fault" in str(exc_info.value)

    def test_crash_halt_mode_starves_peer(self):
        scenario = FaultScenario("silent-death", faults=[
            ProcessFault("crash", "sw", at_cycle=0, mode="halt"),
        ])
        with pytest.raises(DeadlockError) as exc_info:
            run_tlm(faults=scenario)
        assert "acc" in str(exc_info.value)

    def test_fault_injected_error_is_simulation_error(self):
        assert issubclass(FaultInjectedError, SimulationError)


class TestValidation:
    def test_unknown_channel_target_fails_fast(self):
        scenario = FaultScenario("typo", faults=[
            ChannelFault("drop", "reqq"),
        ])
        with pytest.raises(FaultScenarioError) as exc_info:
            run_tlm(faults=scenario)
        assert "reqq" in str(exc_info.value)

    def test_unknown_process_target_fails_fast(self):
        scenario = FaultScenario("typo", faults=[
            ProcessFault("stall", "cpu9", cycles=1),
        ])
        with pytest.raises(FaultScenarioError):
            run_tlm(faults=scenario)

    def test_pcam_validates_targets_too(self):
        scenario = FaultScenario("typo", faults=[
            ChannelFault("drop", "bogus"),
        ])
        with pytest.raises(FaultScenarioError):
            run_pcam(two_pe_design(), faults=scenario)


def probabilistic_scenario(seed):
    return FaultScenario("coin-flips", seed=seed, faults=[
        ChannelFault("delay", "req", rate=0.5, cycles=25),
        ChannelFault("corrupt", "rsp", rate=0.5, xor_mask=0x01),
    ])


class TestDeterminism:
    def test_same_seed_same_counters_and_makespan(self):
        first = run_tlm(faults=probabilistic_scenario(42))
        second = run_tlm(faults=probabilistic_scenario(42))
        assert first.fault_stats == second.fault_stats
        assert first.makespan_cycles == second.makespan_cycles

    def test_same_seed_across_engines(self):
        coroutine = run_tlm(faults=probabilistic_scenario(42),
                            engine="coroutine")
        thread = run_tlm(faults=probabilistic_scenario(42), engine="thread")
        assert coroutine.fault_stats == thread.fault_stats
        assert coroutine.makespan_cycles == thread.makespan_cycles

    def test_counters_identical_across_tlm_and_pcam(self):
        # Same application, same per-channel transaction order — the fault
        # decision streams (and so all counters) must agree between the
        # abstract TLM and the cycle-accurate board model.
        tlm = run_tlm(faults=probabilistic_scenario(42))
        board = run_pcam(two_pe_design(), faults=probabilistic_scenario(42))
        assert tlm.fault_stats == board.fault_stats

    def test_pcam_same_seed_reproducible(self):
        first = run_pcam(two_pe_design(), faults=probabilistic_scenario(7))
        second = run_pcam(two_pe_design(), faults=probabilistic_scenario(7))
        assert first.fault_stats == second.fault_stats
        assert first.makespan_cycles == second.makespan_cycles

    def test_per_fault_breakdown_reported(self):
        result = run_tlm(faults=probabilistic_scenario(42))
        per_fault = result.fault_stats["per_fault"]
        assert len(per_fault) == 2
        assert {entry["type"] for entry in per_fault} == {"delay", "corrupt"}


class TestFunctionalCorrectnessUnderFaults:
    def test_delay_preserves_data(self):
        # Delays perturb timing only: the computation's result is untouched.
        scenario = FaultScenario("slow", faults=[
            ChannelFault("delay", "req", cycles=10),
        ])
        result = run_tlm(faults=scenario)
        assert result.process("sw").return_value == expected_total()

    def test_pcam_delay_preserves_data(self):
        scenario = FaultScenario("slow", faults=[
            ChannelFault("delay", "req", cycles=10),
        ])
        clean = run_pcam(two_pe_design())
        board = run_pcam(two_pe_design(), faults=scenario)
        assert board.pe("sw").return_value == expected_total()
        assert board.makespan_cycles > clean.makespan_cycles
