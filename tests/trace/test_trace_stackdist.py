"""Bit-identity of the stack-distance evaluator against direct Cache replay.

This is the load-bearing guarantee of the reference-model fast path: for
any trace and any valid LRU geometry (the NullCache size-0 edge included),
:func:`repro.trace.evaluate_stream` must report exactly the hit/miss counts
a :class:`repro.cycle.caches.Cache` fed the same accesses would count.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cycle.caches import BYTES_PER_WORD, CacheError, make_cache
from repro.trace import CacheGeometry, LineStream, TraceError, evaluate_stream
from repro.trace.stackdist import HAVE_NUMPY


def replay(stream, geom):
    """Golden reference: feed the expanded trace through the real cache."""
    cache = make_cache(geom.size_bytes, geom.line_words, geom.assoc)
    for line in stream.expand():
        cache.access(line * geom.line_words)
    return cache.hits, cache.misses


# Geometries as (n_sets, assoc) pairs; sizes derive from the line size so
# every drawn combination is valid.  Non-power-of-two set counts force the
# stack engine's non-nested replay path.
SHAPES = st.tuples(st.sampled_from([1, 2, 3, 4, 8, 16]),
                   st.sampled_from([1, 2, 4]))


@st.composite
def stream_and_geometries(draw):
    line_words = draw(st.sampled_from([1, 2, 4, 8]))
    addrs = draw(st.lists(st.integers(min_value=0, max_value=4000),
                          max_size=300))
    shapes = draw(st.lists(SHAPES, min_size=1, max_size=5))
    geometries = [
        CacheGeometry(n_sets * line_words * BYTES_PER_WORD * assoc,
                      line_words, assoc)
        for n_sets, assoc in shapes
    ]
    if draw(st.booleans()):
        geometries.append(CacheGeometry(0, line_words))
    stream = LineStream.from_word_addrs(addrs, line_words)
    return stream, geometries


class TestBitIdentity:
    @given(stream_and_geometries())
    @settings(max_examples=120, deadline=None)
    def test_stack_engine_matches_cache_replay(self, case):
        stream, geometries = case
        results = evaluate_stream(stream, geometries, engine="stack")
        for geom, got in zip(geometries, results):
            assert got == replay(stream, geom), geom

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    @given(stream_and_geometries())
    @settings(max_examples=120, deadline=None)
    def test_vector_engine_matches_stack_engine(self, case):
        stream, geometries = case
        geometries = [g for g in geometries if g.assoc <= 2]
        if not geometries:
            return
        assert (evaluate_stream(stream, geometries, engine="vector")
                == evaluate_stream(stream, geometries, engine="stack"))

    def test_null_cache_counts_every_access_as_miss(self):
        stream = LineStream.from_lines([1, 1, 2, 3, 3, 3], line_words=8)
        assert evaluate_stream(stream, [CacheGeometry(0)]) == [(0, 6)]

    def test_empty_stream(self):
        stream = LineStream.from_lines([], line_words=8)
        for engine in (["stack", "vector"] if HAVE_NUMPY else ["stack"]):
            assert evaluate_stream(
                stream, [CacheGeometry(2048), CacheGeometry(0)], engine=engine,
            ) == [(0, 0), (0, 0)]

    def test_results_align_with_input_order(self):
        stream = LineStream.from_lines(list(range(64)) * 2, line_words=8)
        geoms = [CacheGeometry(0), CacheGeometry(65536), CacheGeometry(1024)]
        null, big, small = evaluate_stream(stream, geoms)
        assert null == (0, 128)
        assert big == (64, 64)  # everything fits: second pass all hits
        assert small[0] < 64


class TestErrors:
    def test_line_size_mismatch_raises(self):
        stream = LineStream.from_lines([1, 2, 3], line_words=8)
        with pytest.raises(TraceError):
            evaluate_stream(stream, [CacheGeometry(2048, line_words=4)])

    def test_null_geometry_ignores_line_size(self):
        stream = LineStream.from_lines([1, 2, 3], line_words=8)
        assert evaluate_stream(
            stream, [CacheGeometry(0, line_words=4)]
        ) == [(0, 3)]

    def test_vector_engine_rejects_high_associativity(self):
        stream = LineStream.from_lines([1, 2, 3], line_words=8)
        geom = CacheGeometry(2048, assoc=4)
        if HAVE_NUMPY:
            with pytest.raises(TraceError):
                evaluate_stream(stream, [geom], engine="vector")
        # auto engine handles it via the stack path either way
        assert evaluate_stream(stream, [geom]) == [replay(stream, geom)]

    def test_unknown_engine_rejected(self):
        stream = LineStream.from_lines([1], line_words=8)
        with pytest.raises(ValueError):
            evaluate_stream(stream, [CacheGeometry(2048)], engine="turbo")

    def test_geometry_validation_matches_cache(self):
        with pytest.raises(CacheError):
            CacheGeometry(1000)  # not a multiple of line*assoc
        with pytest.raises(CacheError):
            CacheGeometry(2048, line_words=0)
        with pytest.raises(CacheError):
            CacheGeometry(2048, assoc=0)
        with pytest.raises(CacheError):
            CacheGeometry(-1)
        assert CacheGeometry(0).is_null
        assert CacheGeometry(2048).n_sets == 32
