"""Trace capture equivalence: traced runs perturb nothing, the ISS and
CycleCPU capture identical streams, and evaluating a captured trace
reproduces the live cache counters bit for bit."""

import pytest

from repro.cycle import run_pcam
from repro.cycle.caches import Cache, NullCache
from repro.cycle.cpu import CycleCPU, run_to_halt
from repro.isa import compile_program
from repro.iss import ISS
from repro.pum import microblaze
from repro.tlm import Design
from repro.trace import (
    CacheGeometry,
    TraceBuilder,
    TracingCache,
    capture_design_trace,
    evaluate_stream,
    iss_capturable,
)
from repro.trace.capture import CPUTrace

SRC = """
int data[256];
int main(void) {
  int s = 0;
  for (int r = 0; r < 4; r++) {
    for (int i = 0; i < 256; i++) data[i] = i * r;
    for (int i = 0; i < 256; i++) {
      if ((data[i] & 3) == 0) s += data[i];
    }
  }
  return s;
}
"""

CHAN_SRC = """
int buf[16];
int producer(void) {
  for (int i = 0; i < 16; i++) buf[i] = i * 3;
  send(1, buf, 16);
  return 0;
}
"""

CHAN_SINK = """
int buf[16];
int consumer(void) {
  recv(1, buf, 16);
  int s = 0;
  for (int i = 0; i < 16; i++) s += buf[i];
  return s;
}
"""


def make_design(icache=2048, dcache=2048):
    design = Design("trace-cap")
    design.add_pe("cpu", microblaze(icache, dcache))
    design.add_process("p", SRC, "main", "cpu")
    return design


def make_channel_design():
    design = Design("trace-chan")
    design.add_pe("cpu0", microblaze(2048, 2048))
    design.add_pe("cpu1", microblaze(2048, 2048))
    design.add_bus("bus")
    design.add_channel(1, "c", "bus")
    design.add_process("prod", CHAN_SRC, "producer", "cpu0")
    design.add_process("cons", CHAN_SINK, "consumer", "cpu1")
    return design


def sw_image():
    from repro.api import compile_cmini

    return compile_program(compile_cmini(SRC), "main", ())


class TestTracingCache:
    def test_records_and_delegates(self):
        builder = TraceBuilder(line_words=8)
        cache = builder.wrap_icache(Cache(2048, name="icache"))
        assert isinstance(cache, TracingCache)
        assert cache.access(0) is False
        assert cache.access(1) is True
        assert cache.hits == 1 and cache.misses == 1  # delegated stats
        assert builder.ifetch.finish().expand() == [0, 0]

    def test_wraps_null_cache(self):
        builder = TraceBuilder(line_words=8)
        cache = builder.wrap_dcache(NullCache())
        assert cache.access(9) is False
        assert builder.daccess.finish().expand() == [1]


class TestTracedRunsPerturbNothing:
    def test_cyclecpu_traced_equals_untraced(self):
        image = sw_image()
        plain = run_to_halt(image, 2048, 2048)
        traced_builder = TraceBuilder()
        traced = run_to_halt(image, 2048, 2048, trace=traced_builder)
        assert traced.cycle == plain.cycle
        assert traced.stats() == plain.stats()
        assert traced.return_value == plain.return_value

    def test_iss_traced_equals_untraced(self):
        image = sw_image()
        plain = ISS(image).run()
        traced = ISS(image, trace=TraceBuilder()).run()
        assert traced.cycles == plain.cycles
        assert traced.n_instrs == plain.n_instrs
        assert traced.class_counts == plain.class_counts
        assert traced.return_value == plain.return_value

    def test_untraced_cpu_has_bare_caches(self):
        cpu = CycleCPU(sw_image(), 2048, 2048)
        assert isinstance(cpu.icache, Cache)
        assert isinstance(cpu.dcache, Cache)


class TestCaptureEquivalence:
    def test_iss_and_pcam_capture_identical_traces(self):
        iss_traces = capture_design_trace(make_design())
        pcam_traces = capture_design_trace(make_design(), prefer_iss=False)
        assert set(iss_traces) == set(pcam_traces) == {"p"}
        assert iss_traces["p"] == pcam_traces["p"]

    def test_capture_routes_by_design_shape(self):
        assert iss_capturable(make_design())
        assert not iss_capturable(make_channel_design())

    def test_evaluated_trace_matches_live_counters(self):
        trace = capture_design_trace(make_design())["p"]
        for icache, dcache in [(0, 0), (2048, 2048), (8192, 4096),
                               (32768, 2048)]:
            stats = run_pcam(make_design(icache, dcache)).cpu_stats()
            (ih, im), = evaluate_stream(trace.ifetch,
                                        [CacheGeometry(icache)])
            (dh, dm), = evaluate_stream(trace.daccess,
                                        [CacheGeometry(dcache)])
            assert (ih, im) == (stats["icache_hits"], stats["icache_misses"])
            assert (dh, dm) == (stats["dcache_hits"], stats["dcache_misses"])
            assert trace.instrs == stats["instrs"]
            assert trace.branch_predictions == stats["branch_predictions"]
            assert trace.branch_miss_rate == stats["branch_miss_rate"]

    def test_channel_design_captures_via_pcam(self):
        traces = capture_design_trace(make_channel_design())
        assert set(traces) == {"prod", "cons"}
        board = run_pcam(make_channel_design())
        for name, trace in traces.items():
            detail = board.pes[name].detail
            (hits, misses), = evaluate_stream(trace.daccess,
                                              [CacheGeometry(2048)])
            assert (hits, misses) == (detail["dcache_hits"],
                                      detail["dcache_misses"])
            assert trace.instrs == detail["instrs"]

    def test_run_pcam_trace_flag(self):
        board = run_pcam(make_design(), trace=True)
        assert set(board.traces) == {"p"}
        assert board.traces["p"].ifetch.accesses == board.pes["p"].detail[
            "icache_hits"] + board.pes["p"].detail["icache_misses"]
        untraced = run_pcam(make_design())
        assert untraced.traces == {}
        assert board.makespan_cycles == untraced.makespan_cycles

    def test_trace_is_picklable(self):
        import pickle

        trace = capture_design_trace(make_design())["p"]
        clone = pickle.loads(pickle.dumps(trace))
        assert isinstance(clone, CPUTrace)
        assert clone == trace
