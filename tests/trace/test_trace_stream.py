"""Tests for the run-length/delta encoded line streams."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import LineStream, StreamRecorder, TraceError


class TestLineStream:
    def test_round_trip_lines(self):
        lines = [0, 0, 0, 5, 5, 2, 2, 2, 2, 7]
        stream = LineStream.from_lines(lines, line_words=8)
        assert stream.expand() == lines
        assert stream.accesses == len(lines)
        assert stream.n_runs == 4
        assert stream.lines() == [0, 5, 2, 7]

    def test_from_word_addrs_divides_by_line_size(self):
        stream = LineStream.from_word_addrs([0, 1, 7, 8, 16], line_words=8)
        assert stream.expand() == [0, 0, 0, 1, 2]

    def test_empty_stream(self):
        stream = LineStream.from_lines([], line_words=8)
        assert stream.n_runs == 0
        assert stream.accesses == 0
        assert stream.expand() == []

    def test_equality(self):
        a = LineStream.from_lines([1, 2, 2], line_words=4)
        b = LineStream.from_lines([1, 2, 2], line_words=4)
        c = LineStream.from_lines([1, 2], line_words=4)
        assert a == b
        assert a != c
        assert a != LineStream.from_lines([1, 2, 2], line_words=8)

    def test_validation(self):
        from array import array

        with pytest.raises(TraceError):
            LineStream(0)
        with pytest.raises(TraceError):
            LineStream(8, array("q", [1, 2]), array("q", [1]))

    @given(st.lists(st.integers(min_value=0, max_value=50), max_size=200),
           st.sampled_from([1, 2, 8]))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, lines, line_words):
        stream = LineStream.from_lines(lines, line_words)
        assert stream.expand() == lines
        assert stream.accesses == len(lines)
        # runs really are maximal: consecutive run lines always differ
        decoded = stream.lines()
        assert all(a != b for a, b in zip(decoded, decoded[1:]))
        assert all(count >= 1 for count in stream.counts)


class TestStreamRecorder:
    def test_matches_from_word_addrs(self):
        addrs = [0, 1, 9, 8, 64, 65, 66, 3]
        recorder = StreamRecorder(line_words=8)
        for addr in addrs:
            recorder.add(addr)
        assert recorder.finish() == LineStream.from_word_addrs(addrs, 8)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_recorder_equivalence_property(self, addrs):
        recorder = StreamRecorder(line_words=4)
        for addr in addrs:
            recorder.add(addr)
        assert recorder.finish() == LineStream.from_word_addrs(addrs, 4)
