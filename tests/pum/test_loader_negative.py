"""Negative-path tests for PUM deserialisation: malformed inputs fail
loudly, not with silently-wrong models."""

import pytest

from repro.pum import (
    PUMFormatError,
    load_pum,
    pum_from_dict,
    pum_from_json,
    pum_to_dict,
    microblaze,
)
from repro.pum.model import PUMError


def valid():
    return pum_to_dict(microblaze())


class TestMalformedPUMs:
    def test_missing_required_key(self):
        data = valid()
        del data["execution"]
        with pytest.raises(PUMFormatError) as exc_info:
            pum_from_dict(data)
        assert "execution" in str(exc_info.value)

    def test_missing_nested_key_names_field(self):
        data = valid()
        del data["execution"]["op_mappings"]["alu"]["demand"]
        with pytest.raises(PUMFormatError) as exc_info:
            pum_from_dict(data)
        assert "op_mappings.alu" in str(exc_info.value)

    def test_format_error_is_pum_error(self):
        assert issubclass(PUMFormatError, PUMError)

    def test_bad_policy(self):
        data = valid()
        data["execution"]["policy"] = "magic"
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_mapping_to_unknown_unit(self):
        data = valid()
        data["execution"]["op_mappings"]["alu"]["usage"] = {
            "2": ["VECTOR", "simd"]
        }
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_commit_before_demand(self):
        data = valid()
        row = data["execution"]["op_mappings"]["alu"]
        row["demand"], row["commit"] = 3, 1
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_commit_past_pipeline(self):
        data = valid()
        data["execution"]["op_mappings"]["alu"]["commit"] = 99
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_zero_quantity_unit(self):
        data = valid()
        data["units"][0]["quantity"] = 0
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_invalid_hit_rate(self):
        data = valid()
        first_size = next(iter(data["memory"]["icache"]))
        data["memory"]["icache"][first_size] = [1.7, 0]
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_invalid_branch_rate(self):
        data = valid()
        data["branch"]["miss_rate"] = -0.2
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_empty_pipeline(self):
        data = valid()
        data["pipelines"][0]["stages"] = []
        with pytest.raises(PUMError):
            pum_from_dict(data)

    def test_duplicate_unit_kind(self):
        data = valid()
        data["units"].append(dict(data["units"][0], uid="alu_dup"))
        with pytest.raises(PUMError):
            pum_from_dict(data)


class TestLoadPum:
    def test_missing_file_names_path(self, tmp_path):
        path = str(tmp_path / "nope.json")
        with pytest.raises(PUMFormatError) as exc_info:
            load_pum(path)
        assert path in str(exc_info.value)

    def test_invalid_json_names_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(PUMFormatError) as exc_info:
            load_pum(str(path))
        assert str(path) in str(exc_info.value)
        assert "invalid JSON" in str(exc_info.value)

    def test_missing_field_names_path_and_field(self, tmp_path):
        import json

        data = valid()
        del data["pipelines"]
        path = tmp_path / "incomplete.json"
        path.write_text(json.dumps(data))
        with pytest.raises(PUMFormatError) as exc_info:
            load_pum(str(path))
        message = str(exc_info.value)
        assert str(path) in message and "pipelines" in message

    def test_invalid_json_text(self):
        with pytest.raises(PUMFormatError):
            pum_from_json("[1, 2")
