"""Round-trip tests for PUM serialisation."""

import pytest

from repro.pum import (
    dct_hw,
    load_pum,
    microblaze,
    pum_from_dict,
    pum_from_json,
    pum_to_dict,
    pum_to_json,
    save_pum,
    superscalar2,
)


def assert_pums_equal(a, b):
    assert a.name == b.name
    assert a.frequency_mhz == b.frequency_mhz
    assert a.icache_size == b.icache_size
    assert a.dcache_size == b.dcache_size
    assert a.execution.policy == b.execution.policy
    assert set(a.execution.op_mappings) == set(b.execution.op_mappings)
    for opclass, ma in a.execution.op_mappings.items():
        mb = b.execution.op_mappings[opclass]
        assert (ma.demand_stage, ma.commit_stage, ma.usage) == (
            mb.demand_stage, mb.commit_stage, mb.usage,
        )
    assert [(u.uid, u.kind, u.quantity, u.modes) for u in a.units] == [
        (u.uid, u.kind, u.quantity, u.modes) for u in b.units
    ]
    assert [(p.name, p.stages, p.width) for p in a.pipelines] == [
        (p.name, p.stages, p.width) for p in b.pipelines
    ]
    assert (a.branch is None) == (b.branch is None)
    if a.branch is not None:
        assert (a.branch.policy, a.branch.penalty, a.branch.miss_rate) == (
            b.branch.policy, b.branch.penalty, b.branch.miss_rate,
        )
    assert (a.memory is None) == (b.memory is None)
    if a.memory is not None:
        assert a.memory.ext_latency == b.memory.ext_latency
        for table in ("icache", "dcache"):
            ta, tb = getattr(a.memory, table), getattr(b.memory, table)
            assert set(ta) == set(tb)
            for size in ta:
                assert (ta[size].hit_rate, ta[size].hit_delay) == (
                    tb[size].hit_rate, tb[size].hit_delay,
                )


@pytest.mark.parametrize("factory", [microblaze, dct_hw, superscalar2])
def test_dict_round_trip(factory):
    original = factory()
    restored = pum_from_dict(pum_to_dict(original))
    assert_pums_equal(original, restored)


@pytest.mark.parametrize("factory", [microblaze, dct_hw])
def test_json_round_trip(factory):
    original = factory()
    restored = pum_from_json(pum_to_json(original))
    assert_pums_equal(original, restored)


def test_file_round_trip(tmp_path):
    path = tmp_path / "mb.json"
    original = microblaze(icache_size=2048, dcache_size=2048)
    save_pum(original, str(path))
    assert_pums_equal(original, load_pum(str(path)))


def test_json_is_stable(tmp_path):
    text1 = pum_to_json(microblaze())
    text2 = pum_to_json(pum_from_json(text1))
    assert text1 == text2
