"""Tests for the PUM preset library (the paper's Fig. 4 and Fig. 5)."""

from repro.cdfg.ir import OP_CLASSES
from repro.pum import (
    PAPER_CACHE_CONFIGS,
    dct_hw,
    filtercore_hw,
    imdct_hw,
    microblaze,
    superscalar2,
)


class TestMicroBlaze:
    def test_is_single_issue_five_stage(self):
        pum = microblaze()
        assert len(pum.pipelines) == 1
        assert pum.pipelines[0].n_stages == 5
        assert pum.pipelines[0].width == 1

    def test_is_pipelined_with_branch_and_memory(self):
        pum = microblaze()
        assert pum.is_pipelined
        assert pum.branch is not None
        assert pum.memory is not None

    def test_cache_configuration(self):
        pum = microblaze(icache_size=16 * 1024, dcache_size=8 * 1024)
        assert pum.icache_size == 16 * 1024
        assert pum.dcache_size == 8 * 1024

    def test_covers_every_opclass(self):
        pum = microblaze()
        for opclass in OP_CLASSES:
            if opclass == "comm":
                continue
            assert opclass in pum.execution.op_mappings or opclass in (
                "move",
            )
        assert "comm" in pum.execution.op_mappings

    def test_load_commits_later_than_alu(self):
        pum = microblaze()
        assert (
            pum.execution.mapping_for("load").commit_stage
            > pum.execution.mapping_for("alu").commit_stage - 1
        )

    def test_paper_cache_configs_have_statistics(self):
        pum = microblaze()
        for isize, dsize in PAPER_CACHE_CONFIGS:
            pum.memory.point("i", isize)
            pum.memory.point("d", dsize)


class TestCustomHW:
    def test_dct_is_single_stage_non_pipelined(self):
        pum = dct_hw()
        assert len(pum.pipelines) == 1
        assert pum.pipelines[0].n_stages == 1
        assert not pum.is_pipelined

    def test_dct_has_no_memory_hierarchy(self):
        pum = dct_hw()
        assert pum.memory is None
        assert pum.branch is None

    def test_hw_uses_list_policy(self):
        for factory in (dct_hw, filtercore_hw, imdct_hw):
            assert factory().execution.policy == "list"

    def test_filtercore_has_more_fpus_than_imdct(self):
        f = filtercore_hw().unit("FPU").quantity
        i = imdct_hw().unit("FPU").quantity
        assert f > i

    def test_sram_is_single_cycle(self):
        assert dct_hw().unit("MEM").delay("access") == 1


class TestSuperscalar:
    def test_two_pipelines(self):
        pum = superscalar2()
        assert len(pum.pipelines) == 2

    def test_doubled_alus(self):
        assert superscalar2().unit("ALU").quantity == 2
