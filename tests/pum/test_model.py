"""Unit tests for the PUM data models."""

import pytest

from repro.pum.model import (
    BranchModel,
    CachePoint,
    ExecutionModel,
    FunctionalUnit,
    MemoryModel,
    OpMapping,
    Pipeline,
    PUM,
    PUMError,
)


def minimal_pum(**overrides):
    units = overrides.get("units") or [
        FunctionalUnit("alu0", "ALU", 1, {"int": 1}),
    ]
    mappings = overrides.get("mappings") or {
        "alu": OpMapping(0, 0, {0: ("ALU", "int")}),
    }
    pipelines = overrides.get("pipelines") or [Pipeline("p", ["EXE"], None)]
    return PUM(
        "test",
        ExecutionModel(overrides.get("policy", "asap"), mappings),
        units,
        pipelines,
        branch=overrides.get("branch"),
        memory=overrides.get("memory"),
        icache_size=overrides.get("icache_size", 0),
        dcache_size=overrides.get("dcache_size", 0),
    )


class TestFunctionalUnit:
    def test_mode_delays(self):
        fu = FunctionalUnit("fpu", "FPU", 2, {"add": 4, "mul": 5})
        assert fu.delay("add") == 4
        assert fu.delay("mul") == 5

    def test_unknown_mode_raises(self):
        fu = FunctionalUnit("fpu", "FPU", 1, {"add": 4})
        with pytest.raises(PUMError):
            fu.delay("div")

    def test_invalid_quantity(self):
        with pytest.raises(PUMError):
            FunctionalUnit("x", "X", 0, {"m": 1})

    def test_zero_delay_mode_rejected(self):
        with pytest.raises(PUMError):
            FunctionalUnit("x", "X", 1, {"m": 0})

    def test_empty_modes_rejected(self):
        with pytest.raises(PUMError):
            FunctionalUnit("x", "X", 1, {})


class TestPipeline:
    def test_stage_count(self):
        assert Pipeline("p", ["IF", "EX"], 1).n_stages == 2

    def test_unbounded_width(self):
        assert Pipeline("p", ["EXE"], None).width is None

    def test_empty_stages_rejected(self):
        with pytest.raises(PUMError):
            Pipeline("p", [], 1)

    def test_zero_width_rejected(self):
        with pytest.raises(PUMError):
            Pipeline("p", ["EXE"], 0)


class TestOpMapping:
    def test_commit_before_demand_rejected(self):
        with pytest.raises(PUMError):
            OpMapping(3, 2)

    def test_usage_stored(self):
        m = OpMapping(2, 3, {2: ("ALU", "int")})
        assert m.usage[2] == ("ALU", "int")


class TestBranchModel:
    def test_expected_penalty(self):
        bm = BranchModel("2bit", 4, 0.25)
        assert bm.expected_penalty() == 1.0

    def test_invalid_rate(self):
        with pytest.raises(PUMError):
            BranchModel("2bit", 4, 1.5)

    def test_negative_penalty(self):
        with pytest.raises(PUMError):
            BranchModel("2bit", -1, 0.1)


class TestMemoryModel:
    def make(self):
        return MemoryModel(
            {2048: CachePoint(0.9, 0)},
            {4096: CachePoint(0.8, 1)},
            ext_latency=20,
        )

    def test_point_lookup(self):
        mm = self.make()
        assert mm.point("i", 2048).hit_rate == 0.9
        assert mm.point("d", 4096).hit_delay == 1

    def test_size_zero_is_all_miss(self):
        point = self.make().point("i", 0)
        assert point.hit_rate == 0.0

    def test_unknown_size_raises(self):
        with pytest.raises(PUMError):
            self.make().point("i", 1234)

    def test_bad_cache_point(self):
        with pytest.raises(PUMError):
            CachePoint(2.0, 0)
        with pytest.raises(PUMError):
            CachePoint(0.5, -1)


class TestPUMValidation:
    def test_unknown_unit_kind_rejected(self):
        with pytest.raises(PUMError):
            minimal_pum(mappings={"alu": OpMapping(0, 0, {0: ("MUL", "x")})})

    def test_unknown_mode_rejected(self):
        with pytest.raises(PUMError):
            minimal_pum(mappings={"alu": OpMapping(0, 0, {0: ("ALU", "nope")})})

    def test_commit_beyond_pipeline_rejected(self):
        with pytest.raises(PUMError):
            minimal_pum(mappings={"alu": OpMapping(0, 5, {0: ("ALU", "int")})})

    def test_duplicate_unit_kind_rejected(self):
        units = [
            FunctionalUnit("a0", "ALU", 1, {"int": 1}),
            FunctionalUnit("a1", "ALU", 1, {"int": 1}),
        ]
        with pytest.raises(PUMError):
            minimal_pum(units=units)

    def test_unknown_policy_rejected(self):
        with pytest.raises(PUMError):
            ExecutionModel("random", {})

    def test_is_pipelined(self):
        single = minimal_pum()
        assert not single.is_pipelined
        multi = minimal_pum(
            pipelines=[Pipeline("p", ["IF", "EX"], 1)],
            mappings={"alu": OpMapping(1, 1, {1: ("ALU", "int")})},
        )
        assert multi.is_pipelined

    def test_with_caches_copies(self):
        pum = minimal_pum(
            memory=MemoryModel({2048: CachePoint(0.9, 0)}, {}, 20)
        )
        other = pum.with_caches(2048, 0)
        assert other.icache_size == 2048
        assert pum.icache_size == 0
        assert other.execution is pum.execution
