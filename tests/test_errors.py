"""Error-taxonomy invariants (:mod:`repro.errors`).

One hierarchy, three surfaces: CLI exit codes, JSON error replies, and
client-side exception reconstruction.  These tests pin the registry (every
subsystem error carries a unique stable slug), the JSON round trip, and
the CLI conventions the serve daemon relies on for bit-identity.
"""

import io

import pytest

from repro import errors
from repro.errors import (
    EXIT_ABORTED,
    EXIT_INPUT,
    EXIT_INTERNAL,
    EXIT_SERVE,
    AbortError,
    InputError,
    ProtocolError,
    RemoteError,
    ReproError,
    ServeError,
    error_from_json,
    error_to_json,
    format_cli_error,
    registered_codes,
)


def _import_all_subsystems():
    """Touch every module that defines ReproError subclasses."""
    import repro.cli  # noqa: F401 — imports most of them
    import repro.cycle.caches  # noqa: F401
    import repro.estimation.staticest  # noqa: F401
    import repro.explore  # noqa: F401
    import repro.faults.inject  # noqa: F401
    import repro.faults.scenario  # noqa: F401
    import repro.pum.model  # noqa: F401
    import repro.search  # noqa: F401
    import repro.serve  # noqa: F401
    import repro.simkernel.kernel  # noqa: F401
    import repro.trace.stream  # noqa: F401


class TestRegistry:
    def test_expected_codes_registered(self):
        _import_all_subsystems()
        codes = registered_codes()
        for expected in (
            "bad-input", "aborted", "serve",                  # the bases
            "pum", "fault-scenario", "cache", "trace",        # bad input
            "static-estimate", "search", "checkpoint",
            "simulation", "deadlock", "watchdog",             # aborted
            "wall-clock-exceeded", "horizon-exceeded",
            "livelock", "fault-injected",
            "bad-request", "overloaded", "circuit-open",      # serving
            "worker-crashed",
        ):
            assert expected in codes, expected

    def test_codes_are_unique_per_class(self):
        _import_all_subsystems()
        for code, cls in registered_codes().items():
            assert cls.code == code

    def test_exit_code_conventions(self):
        _import_all_subsystems()
        for cls in registered_codes().values():
            assert cls.exit_code in (
                EXIT_INPUT, EXIT_ABORTED, EXIT_SERVE,
            ), cls
            if issubclass(cls, AbortError):
                assert cls.exit_code == EXIT_ABORTED
            elif issubclass(cls, ServeError):
                assert cls.exit_code == EXIT_SERVE
            elif issubclass(cls, InputError):
                assert cls.exit_code == EXIT_INPUT

    def test_simulation_errors_joined_the_taxonomy(self):
        # The historical CLI convention: aborted runs exit 3.
        from repro.simkernel import SimulationError, WallClockExceeded

        assert issubclass(SimulationError, AbortError)
        assert SimulationError.exit_code == EXIT_ABORTED
        assert WallClockExceeded.code == "wall-clock-exceeded"


class TestJsonRoundTrip:
    def test_structured_error(self):
        data = error_to_json(ProtocolError("bad kind"))
        assert data == {"code": "bad-request", "message": "bad kind",
                        "exit_code": EXIT_SERVE}
        rebuilt = error_from_json(data)
        assert isinstance(rebuilt, ProtocolError)
        assert str(rebuilt) == "bad kind"

    def test_unstructured_error_becomes_internal(self):
        data = error_to_json(ValueError("whoops"))
        assert data["code"] == "internal"
        assert data["exit_code"] == EXIT_INTERNAL
        assert "ValueError" in data["message"]

    def test_unknown_code_becomes_remote_error(self):
        rebuilt = error_from_json(
            {"code": "from-the-future", "message": "m", "exit_code": 7}
        )
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.code == "from-the-future"
        assert rebuilt.exit_code == 7

    def test_internal_round_trips_as_remote(self):
        rebuilt = error_from_json(error_to_json(RuntimeError("bug")))
        assert isinstance(rebuilt, RemoteError)
        assert rebuilt.exit_code == EXIT_INTERNAL


class TestCliSurface:
    def test_format_matches_historical_wording(self):
        assert format_cli_error(InputError("bad file")) == (
            "error: bad file\n"
        )
        from repro.simkernel import DeadlockError

        assert format_cli_error(DeadlockError("all quiet")) == (
            "simulation aborted: all quiet\n"
        )

    def test_cli_maps_input_errors_to_exit_2(self, tmp_path):
        from repro.cli import main

        bad = tmp_path / "pum.json"
        bad.write_text("{nope")
        src = tmp_path / "a.cmini"
        src.write_text("int main(void) { return 4; }")
        out = io.StringIO()
        code = main(
            ["estimate", str(src), "--pum-json", str(bad)], out=out,
        )
        assert code == 2
        assert out.getvalue().startswith("error:")

    def test_base_error_defaults(self):
        exc = ReproError("x")
        assert exc.code == "error"
        assert exc.exit_code == EXIT_INPUT


class TestRemoteErrorInstances:
    def test_instance_attributes_override_class(self):
        exc = RemoteError("m", code="weird", exit_code=4)
        assert (exc.code, exc.exit_code) == ("weird", 4)
        # The class-level registry entry is untouched.
        assert RemoteError.code == "remote"

    def test_error_from_json_missing_fields(self):
        rebuilt = error_from_json({})
        assert isinstance(rebuilt, ReproError)
        assert rebuilt.exit_code == EXIT_SERVE
