"""Analytic traffic replay: exactness, flags, validation and fallbacks.

The replay tier (:mod:`repro.workloads.traffic_replay`) evaluates
N-instance traffic points from ONE recorded instance trace without the
kernel.  These tests pin its exactness contract: fifo replays are
bit-identical to the kernel across schedulers, granularities and instance
counts; priority/rr replays are cross-validated and a divergence falls the
whole group back to kernel runs; flagged points (simultaneous requests,
contended release boundaries) individually fall back; unsupported shapes
fall back wholesale — the tier is never silently wrong, only slower.
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.workloads import (
    ReplayUnsupported,
    TrafficError,
    TrafficSpec,
    compile_replay_plan,
    replay_traffic_sweep,
    run_traffic,
)
from repro.workloads import traffic_replay

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _design(policy="fifo", priorities=None):
    design, _ = build_design("SW+1", SMALL, n_frames=1, seed=3)
    if policy is not None:
        for bus in design.buses.values():
            bus.policy = policy
            if priorities is not None:
                bus.priorities = dict(priorities)
    return design


def _key(result):
    """Everything the acceptance contract compares, as one hashable."""
    return (
        result.makespan_cycles,
        result.end_time_ns,
        tuple(result.latencies_cycles),
        tuple(sorted(
            (bus, tuple(sorted(stats.items())))
            for bus, stats in result.bus_stats.items()
        )),
    )


def _poisson(n, gap=500.0, seed=7):
    return TrafficSpec(n, arrivals="poisson", mean_gap_cycles=gap, seed=seed)


class TestFifoBitIdentity:
    @pytest.mark.parametrize("scheduler", ["heap", "wheel"])
    @pytest.mark.parametrize("granularity", ["transaction", "block"])
    @pytest.mark.parametrize("n", [1, 8, 64])
    def test_replay_matches_kernel(self, scheduler, granularity, n):
        """The acceptance property: fifo replay is bit-identical to the
        kernel — makespan, end time, every latency, every bus counter."""
        spec = _poisson(n)
        results, stats = replay_traffic_sweep(
            _design(), [spec], granularity=granularity,
            scheduler=scheduler, validate_n=0,
        )
        assert stats["replayed"] == 1  # really took the analytic path
        assert results[0].replayed
        kernel = run_traffic(
            _design(), spec, granularity=granularity, scheduler=scheduler,
        )
        assert _key(results[0]) == _key(kernel)

    def test_replayed_result_reports_replay_engine(self):
        results, stats = replay_traffic_sweep(
            _design(), [_poisson(8)], validate_n=0)
        assert results[0].kernel_stats["engine"] == "replay"
        assert results[0].scheduler == "replay"
        assert stats["self_check"] == "ok"

    def test_sweep_shares_one_capture(self):
        """K points cost one capture + K analytic passes, not K kernel
        runs; the validated point is the only simulation."""
        specs = [_poisson(8, seed=s) for s in range(4)]
        results, stats = replay_traffic_sweep(_design(), specs)
        assert stats["points"] == 4
        # The validated point returns the (authoritative) kernel result, so
        # it counts as simulated; the other three never touch the kernel.
        assert stats["replayed"] == 3
        assert stats["validated"] == 1
        assert stats["simulated"] == 1
        assert stats["flagged"] == 0
        for spec, result in zip(specs, results):
            assert _key(result) == _key(run_traffic(_design(), spec))


class TestScalarFallbackEngine:
    def test_scalar_engine_bit_identical(self, monkeypatch):
        """Without numpy the pure-Python fold must produce the exact same
        floats (both are the same left-to-right summation order)."""
        spec = _poisson(16)
        vec_results, vec_stats = replay_traffic_sweep(
            _design(), [spec], validate_n=0)
        monkeypatch.setattr(traffic_replay, "HAVE_NUMPY", False)
        scal_results, scal_stats = replay_traffic_sweep(
            _design(), [spec], validate_n=0)
        assert scal_stats["engine"] == "scalar"
        assert scal_stats["replayed"] == 1
        assert _key(scal_results[0]) == _key(vec_results[0])
        if vec_stats["engine"] == "vectorized":
            assert _key(vec_results[0]) == _key(
                run_traffic(_design(), spec))


class TestValidationPolicy:
    @pytest.mark.parametrize("policy,priorities", [
        ("priority", {"filter_l": 1, "filter_r": 2}),
        ("rr", None),
    ])
    def test_non_fifo_policies_validate_and_match(self, policy, priorities):
        """priority/rr never replay unvalidated: at least one point runs on
        the kernel, and accepted replays match it bit-identically."""
        specs = [_poisson(12, seed=s) for s in (1, 2)]
        results, stats = replay_traffic_sweep(
            _design(policy, priorities), specs, validate_n=0)
        assert stats["validated"] >= 1
        assert "diverged" not in stats
        for spec, result in zip(specs, results):
            assert _key(result) == _key(
                run_traffic(_design(policy, priorities), spec))

    def test_divergence_falls_whole_group_back(self, monkeypatch):
        """A validation mismatch may mean any replayed point is wrong, so
        the entire group re-runs on the kernel — never silently wrong."""
        monkeypatch.setattr(traffic_replay, "_identical",
                            lambda replayed, reference: False)
        specs = [_poisson(8, seed=s) for s in (1, 2, 3)]
        results, stats = replay_traffic_sweep(_design(), specs, validate_n=1)
        assert stats["diverged"] is True
        assert stats["replayed"] == 0
        # Every analytic result is discarded: the diverging validated point
        # already holds its kernel run, the rest re-run as fallbacks.
        assert (stats["fallbacks"] + stats["validated"] + stats["flagged"]
                == len(specs))
        for spec, result in zip(specs, results):
            assert not result.replayed
            assert _key(result) == _key(run_traffic(_design(), spec))


class TestFlagsAndFallbacks:
    def test_lockstep_burst_flags_and_falls_back(self):
        """N instances requesting one bus at the same instant is exactly
        the load-dependent tie the replay refuses to guess at."""
        spec = TrafficSpec(8, arrivals="bursty", burst_size=8,
                           mean_gap_cycles=0.0)
        results, stats = replay_traffic_sweep(
            _design(), [spec], validate_n=0)
        assert stats["flagged"] == 1
        assert stats["replayed"] == 0
        assert stats["flag_reasons"]
        assert not results[0].replayed
        assert _key(results[0]) == _key(run_traffic(_design(), spec))

    def test_plain_bus_design_is_unsupported(self):
        """Channels riding a policy-less bus resolve contention by retry
        polling — seq-tied, not replayable — so the sweep falls back."""
        spec = _poisson(4)
        results, stats = replay_traffic_sweep(
            _design(policy=None), [spec], validate_n=0)
        assert "unsupported" in stats
        assert stats["replayed"] == 0
        assert stats["fallbacks"] == 1
        assert _key(results[0]) == _key(run_traffic(_design(None), spec))

    def test_compile_rejects_plain_bus_design(self):
        from repro.workloads.traffic import capture_traffic_profile

        design = _design(policy=None)
        profile = capture_traffic_profile(design)
        with pytest.raises(ReplayUnsupported):
            compile_replay_plan(profile, design)


class TestRunTrafficReplayAuto:
    def test_auto_matches_off(self):
        spec = _poisson(16)
        auto = run_traffic(_design(), spec, replay="auto")
        off = run_traffic(_design(), spec, replay="off")
        assert auto.replayed
        assert auto.replay_stats["replayed"] == 1
        assert _key(auto) == _key(off)

    def test_bad_replay_mode_rejected(self):
        with pytest.raises(TrafficError):
            run_traffic(_design(), TrafficSpec(2), replay="always")

    def test_faults_force_kernel_path(self):
        from repro.faults import ChannelFault, FaultScenario

        slow = FaultScenario("slow", faults=[
            ChannelFault("delay", "filter_l_req", cycles=100),
        ])
        result = run_traffic(_design(), _poisson(4), replay="auto",
                             faults=slow)
        assert not result.replayed
        assert result.fault_stats["total_events"] > 0


class TestExploreTrafficReplayTier:
    def test_explore_replays_traffic_points(self):
        from repro.explore import explore, mp3_traffic_points

        def points():
            return mp3_traffic_points(
                params=SMALL, variant="SW+1", n_instances=(2, 6), seed=3,
                arrivals="poisson", mean_gap_cycles=500.0, traffic_seed=7,
            )

        replayed = explore(points(), replay="auto")
        assert not replayed.failures
        stats = replayed.replay_stats
        assert stats["traffic_points"] == 2
        assert stats["traffic_replayed"] > 0
        simulated = explore(points(), replay="off")
        for fast, slow in zip(
            sorted(replayed.results, key=lambda r: r.point.name),
            sorted(simulated.results, key=lambda r: r.point.name),
        ):
            assert fast.makespan_cycles == slow.makespan_cycles
            assert fast.per_process_cycles == slow.per_process_cycles
