"""Traffic workload engine: seeded arrivals, N-instance runs, latencies.

The engine spawns N instances of one design (private channels and CPU
shares, shared buses) under a seeded arrival process.  These tests pin the
spec's validation and determinism, the single-instance anchor (one instance
== the plain TLM makespan), heap/wheel bit-identity at traffic scale,
fault-scenario composition, and the per-instance latency statistics.
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.faults import ChannelFault, FaultScenario
from repro.tlm import generate_tlm
from repro.workloads import (
    TrafficError,
    TrafficSpec,
    capture_traffic_profile,
    run_traffic,
)

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _design(policy=None):
    design, _ = build_design("SW+1", SMALL, n_frames=1, seed=3)
    if policy is not None:
        for bus in design.buses.values():
            bus.policy = policy
    return design


class TestTrafficSpec:
    def test_validation(self):
        with pytest.raises(TrafficError):
            TrafficSpec(0)
        with pytest.raises(TrafficError):
            TrafficSpec(4, arrivals="uniform")
        with pytest.raises(TrafficError):
            TrafficSpec(4, mean_gap_cycles=-1.0)
        with pytest.raises(TrafficError):
            TrafficSpec(4, arrivals="bursty", burst_size=0)

    def test_offsets_deterministic_and_integral(self):
        spec = TrafficSpec(16, arrivals="poisson", mean_gap_cycles=500.0,
                           seed=11)
        first = spec.arrival_offsets()
        second = spec.arrival_offsets()
        assert first == second
        assert len(first) == 16
        assert all(isinstance(o, int) for o in first)
        assert first == sorted(first)
        # A different seed really moves the arrivals.
        assert TrafficSpec(16, mean_gap_cycles=500.0,
                           seed=12).arrival_offsets() != first

    def test_bursty_offsets_arrive_in_groups(self):
        spec = TrafficSpec(12, arrivals="bursty", burst_size=4,
                           mean_gap_cycles=1000.0, seed=3)
        offsets = spec.arrival_offsets()
        assert len(offsets) == 12
        # Exactly n/burst_size distinct instants, burst_size sharers each.
        assert len(set(offsets)) == 3
        for instant in set(offsets):
            assert offsets.count(instant) == 4

    def test_zero_gap_burst_is_lockstep(self):
        offsets = TrafficSpec(8, arrivals="bursty", burst_size=8,
                              mean_gap_cycles=0.0).arrival_offsets()
        assert offsets == [0] * 8

    def test_dict_round_trip(self):
        spec = TrafficSpec(32, arrivals="bursty", mean_gap_cycles=250.0,
                           burst_size=5, seed=9)
        clone = TrafficSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.arrival_offsets() == spec.arrival_offsets()


class TestRunTraffic:
    def test_single_instance_matches_plain_tlm(self):
        plain = generate_tlm(_design()).run()
        traffic = run_traffic(_design(), TrafficSpec(1))
        assert traffic.makespan_cycles == plain.makespan_cycles
        assert traffic.n_instances == 1
        assert traffic.latencies_cycles == [plain.makespan_cycles]

    def test_heap_and_wheel_bit_identical(self):
        spec = TrafficSpec(24, arrivals="poisson", mean_gap_cycles=300.0,
                           seed=5)
        outcomes = set()
        for scheduler in ("heap", "wheel"):
            result = run_traffic(_design("fifo"), spec, scheduler=scheduler)
            assert result.kernel_stats["scheduler"] == scheduler
            outcomes.add((
                result.makespan_cycles,
                tuple(result.latencies_cycles),
                result.kernel_stats["activations"],
                result.kernel_stats["events_scheduled"],
            ))
        assert len(outcomes) == 1

    def test_fixed_seed_is_reproducible(self):
        spec = TrafficSpec(8, arrivals="bursty", burst_size=4, seed=21)
        first = run_traffic(_design("fifo"), spec)
        second = run_traffic(_design("fifo"), spec)
        assert first.latencies_cycles == second.latencies_cycles
        assert first.makespan_cycles == second.makespan_cycles

    def test_profile_reuse_matches_fresh_capture(self):
        design = _design("fifo")
        profile = capture_traffic_profile(design)
        spec = TrafficSpec(6, arrivals="poisson", mean_gap_cycles=200.0)
        fresh = run_traffic(design, spec)
        reused = run_traffic(design, spec, profile=profile)
        assert fresh.latencies_cycles == reused.latencies_cycles

    def test_shared_bus_contention_is_counted(self):
        # Lockstep arrivals on an arbitrated bus must queue.
        spec = TrafficSpec(8, arrivals="bursty", burst_size=8,
                           mean_gap_cycles=0.0)
        result = run_traffic(_design("fifo"), spec)
        stats = result.bus_stats["sysbus"]
        assert stats["queued_grants"] > 0
        assert stats["stall_cycles"] > 0
        # Queuing pushes the stragglers' latencies above the lone run's.
        solo = run_traffic(_design("fifo"), TrafficSpec(1))
        assert max(result.latencies_cycles) > solo.makespan_cycles

    def test_latency_statistics(self):
        spec = TrafficSpec(16, arrivals="poisson", mean_gap_cycles=400.0,
                           seed=2)
        result = run_traffic(_design(), spec)
        summary = result.latency_summary()
        assert summary["min"] == min(result.latencies_cycles)
        assert summary["max"] == max(result.latencies_cycles)
        assert summary["min"] <= summary["p50"] <= summary["p90"]
        assert summary["p90"] <= summary["p95"] <= summary["p99"]
        assert summary["p99"] <= summary["max"]
        assert result.latency_percentile(95) == summary["p95"]
        assert result.latency_percentile(100) == summary["max"]

    @pytest.mark.parametrize("q", [-1, -0.5, 100.1, 101, 1000])
    def test_latency_percentile_rejects_out_of_range(self, q):
        result = run_traffic(_design(), TrafficSpec(2))
        with pytest.raises(TrafficError) as exc_info:
            result.latency_percentile(q)
        assert "outside [0, 100]" in str(exc_info.value)

    def test_faults_compose_with_traffic(self):
        slow = FaultScenario("slow", faults=[
            ChannelFault("delay", "filter_l_req", cycles=100),
        ])
        spec = TrafficSpec(4, arrivals="bursty", burst_size=4,
                           mean_gap_cycles=0.0)
        clean = run_traffic(_design("fifo"), spec)
        runs = [run_traffic(_design("fifo"), spec, faults=slow)
                for _ in range(2)]
        assert runs[0].latencies_cycles == runs[1].latencies_cycles
        assert runs[0].fault_stats["total_events"] > 0
        assert runs[0].makespan_cycles > clean.makespan_cycles

    @pytest.mark.parametrize("n", [1, 64, 130])
    def test_schedulers_identical_under_faults(self, n):
        """Fault injection composed with traffic must stay bit-identical
        across event-queue implementations at any instance count."""
        slow = FaultScenario("slow", faults=[
            ChannelFault("delay", "filter_l_req", cycles=64),
        ])
        spec = TrafficSpec(n, arrivals="poisson", mean_gap_cycles=350.0,
                           seed=13)
        outcomes = []
        for scheduler in ("heap", "wheel"):
            result = run_traffic(_design("fifo"), spec,
                                 scheduler=scheduler, faults=slow)
            assert result.kernel_stats["scheduler"] == scheduler
            assert result.fault_stats["total_events"] > 0
            outcomes.append((
                result.makespan_cycles,
                result.end_time_ns,
                result.latencies_cycles,
                result.fault_stats,
                result.bus_stats,
            ))
        assert outcomes[0] == outcomes[1]


class TestExploreIntegration:
    def test_traffic_meta_forms(self):
        from repro.explore import _traffic_spec_of

        class Point:
            def __init__(self, meta):
                self.meta = meta

        assert _traffic_spec_of(Point({})) is None
        bare = _traffic_spec_of(Point({"traffic": 4}))
        assert bare.n_instances == 4
        assert bare.arrivals == "bursty"
        from_dict = _traffic_spec_of(Point({"traffic": {
            "n_instances": 3, "arrivals": "poisson",
        }}))
        assert from_dict.n_instances == 3
        spec = TrafficSpec(2)
        assert _traffic_spec_of(Point({"traffic": spec})) is spec

    def test_explore_traffic_points_rank(self):
        from repro.explore import explore, mp3_traffic_points

        points = mp3_traffic_points(
            params=SMALL, variant="SW+1", n_instances=(1, 4), seed=3,
        )
        outcome = explore(points, replay="auto")
        assert not outcome.failures
        by_name = {r.point.name: r for r in outcome.results}
        x1 = next(r for name, r in by_name.items() if "x1" in name)
        x4 = next(r for name, r in by_name.items() if "x4" in name)
        assert x4.makespan_cycles > x1.makespan_cycles
        assert len(x4.per_process_cycles) == 4
        assert outcome.replay_stats["traffic_points"] == 2
