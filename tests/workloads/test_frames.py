"""Tests for the synthetic MP3 frame generator."""

from repro.apps.mp3 import Mp3Params
from repro.workloads import make_frames
from repro.workloads.mp3frames import _LCG

P = Mp3Params(n_subbands=8, n_slots=8)


class TestLCG:
    def test_deterministic(self):
        a = _LCG(7)
        b = _LCG(7)
        assert [a.next_u32() for _ in range(10)] == [
            b.next_u32() for _ in range(10)
        ]

    def test_randint_in_range(self):
        rng = _LCG(3)
        for _ in range(200):
            value = rng.randint(-5, 5)
            assert -5 <= value <= 5

    def test_chance_bounds(self):
        rng = _LCG(3)
        assert all(not rng.chance(0) for _ in range(50))
        rng = _LCG(3)
        assert all(rng.chance(100) for _ in range(50))


class TestFrameSet:
    def test_sizes(self):
        frames = make_frames(P, 3, seed=1)
        assert frames.n_frames == 3
        assert len(frames.samples) == 3 * P.frame_words()
        assert len(frames.scalefactors) == 3 * P.scf_words()
        assert len(frames.modes) == 3

    def test_seed_determinism(self):
        assert make_frames(P, 2, seed=5).samples == make_frames(P, 2, seed=5).samples

    def test_seeds_differ(self):
        assert make_frames(P, 2, seed=5).samples != make_frames(P, 2, seed=6).samples

    def test_granule_offsets_cover_disjoint_ranges(self):
        frames = make_frames(P, 2, seed=1)
        offsets = set()
        for f in range(2):
            for g in range(P.n_granules):
                for c in range(P.n_channels):
                    off = frames.granule_offset(f, g, c)
                    assert off % P.granule_samples == 0
                    assert off not in offsets
                    offsets.add(off)
        assert max(offsets) + P.granule_samples == len(frames.samples)

    def test_spectral_shape_high_bands_sparser(self):
        frames = make_frames(P, 8, seed=2)
        low_nonzero = 0
        high_nonzero = 0
        per_sb = P.n_slots
        samples = frames.samples
        for base in range(0, len(samples), P.granule_samples):
            low = samples[base : base + per_sb]
            high = samples[
                base + (P.n_subbands - 1) * per_sb : base + P.granule_samples
            ]
            low_nonzero += sum(1 for v in low if v)
            high_nonzero += sum(1 for v in high if v)
        assert low_nonzero > 2 * high_nonzero

    def test_scalefactors_in_table_range(self):
        frames = make_frames(P, 4, seed=3)
        assert all(0 <= s < 64 for s in frames.scalefactors)

    def test_mode_bits_valid(self):
        frames = make_frames(P, 50, seed=4)
        assert all(0 <= m <= 7 for m in frames.modes)
        # With 50 frames, each feature should appear at least once.
        assert any(m & 1 for m in frames.modes)
        assert any(m & 2 for m in frames.modes)
        assert any(m & 4 for m in frames.modes)
