"""Cold-vs-warm equivalence of the staged TLM generation pipeline.

The artifact pipeline must be *transparent*: a warm store may only change
wall-clock time, never the generated source, the suspending-function sets or
any cycle count.  These tests run every generation twice against one store
(cold then warm) and require bit-identical outputs, across PUM presets,
the bundled applications and every wait granularity — plus the disk-store
round-trip and the corrupted/stale-entry fallback paths.
"""

import json

import pytest

from repro.apps.jpeg import build_jpeg_design
from repro.apps.kernels import dct_source, fir_source, sort_source
from repro.apps.mp3 import Mp3Params, build_design
from repro.artifacts import ArtifactStore
from repro.pum import dct_hw, filtercore_hw, imdct_hw, microblaze, superscalar2
from repro.tlm import Design, generate_tlm
from repro.tlm.generator import GenerationReport, STAGES

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)

PUM_PRESETS = {
    "microblaze": lambda: microblaze(2048, 2048),
    "superscalar2": lambda: superscalar2(2048, 2048),
    "dct-hw": dct_hw,
    "filtercore-hw": filtercore_hw,
    "imdct-hw": imdct_hw,
}

APP_DESIGNS = {
    "mp3": lambda: build_design("SW+2", SMALL, n_frames=1, seed=7,
                                icache_size=2048, dcache_size=2048)[0],
    "jpeg": lambda: build_jpeg_design(True, n_blocks=2, seed=21,
                                      icache_size=2048, dcache_size=2048),
    "kernels": lambda: _kernels_design(),
}


def _kernels_design():
    design = Design("kernels")
    for name, source in (("dct", dct_source(n_blocks=1)),
                         ("fir", fir_source(n_taps=4, n_samples=16)),
                         ("sort", sort_source(n_items=16))):
        design.add_pe("cpu_" + name, microblaze(2048, 2048))
        design.add_process(name, source, "main", "cpu_" + name)
    return design


def _generate(builder, store, **kwargs):
    report = GenerationReport("t", kwargs.get("timed", True))
    model = generate_tlm(builder(), report=report, store=store, **kwargs)
    return model, report


def _snapshot(model):
    """Everything generation produced, in comparable form."""
    return {
        name: (generated.source, tuple(sorted(generated.suspending)))
        for name, (generated, _) in model.programs.items()
    }


def _assert_identical(builder, store, **kwargs):
    cold_model, cold_report = _generate(builder, store, **kwargs)
    warm_model, warm_report = _generate(builder, store, **kwargs)
    assert _snapshot(cold_model) == _snapshot(warm_model)
    cold = cold_model.run()
    warm = warm_model.run()
    assert cold.makespan_cycles == warm.makespan_cycles
    assert (
        {n: p.cycles for n, p in cold.processes.items()}
        == {n: p.cycles for n, p in warm.processes.items()}
    )
    # The warm pass must be pure lookup.
    for stage in STAGES if kwargs.get("timed", True) \
            else ("frontend", "codegen"):
        assert warm_report.stage_misses[stage] == 0, stage
        assert warm_report.stage_hits[stage] > 0, stage
    return cold, warm


class TestColdWarmEquivalence:
    @pytest.mark.parametrize("preset", sorted(PUM_PRESETS))
    def test_presets(self, preset):
        def build():
            design = Design("preset-" + preset)
            design.add_pe("pe0", PUM_PRESETS[preset]())
            design.add_process("p", dct_source(n_blocks=1), "main", "pe0")
            return design

        _assert_identical(build, ArtifactStore())

    @pytest.mark.parametrize("app", sorted(APP_DESIGNS))
    @pytest.mark.parametrize("granularity",
                             ["transaction", "block", "quantum"])
    def test_apps_across_granularities(self, app, granularity):
        _assert_identical(APP_DESIGNS[app], ArtifactStore(),
                          granularity=granularity)

    def test_untimed_generation(self):
        _assert_identical(APP_DESIGNS["kernels"], ArtifactStore(),
                          timed=False)

    def test_distinct_pums_do_not_collide(self):
        # Same source annotated for two different cache sizes must produce
        # different delays even though the second generation hits the
        # frontend stage.
        store = ArtifactStore()

        def build(icache):
            def _build():
                design = Design("sized")
                design.add_pe("cpu", microblaze(icache, 2048))
                design.add_process("p", dct_source(n_blocks=1), "main",
                                   "cpu")
                return design
            return _build

        small, _ = _generate(build(0), store)
        big, _ = _generate(build(32 * 1024), store)
        assert small.run().makespan_cycles > big.run().makespan_cycles

    def test_uncached_matches_cached(self):
        store = ArtifactStore()
        cached, _ = _generate(APP_DESIGNS["jpeg"], store)
        uncached, _ = _generate(APP_DESIGNS["jpeg"], False)
        assert _snapshot(cached) == _snapshot(uncached)
        assert (cached.run().makespan_cycles
                == uncached.run().makespan_cycles)


class TestDiskStore:
    def test_round_trip(self, tmp_path):
        builder = APP_DESIGNS["kernels"]
        baseline, _ = _generate(builder, ArtifactStore())
        _generate(builder, ArtifactStore(directory=str(tmp_path)))
        # Disk-backed stage kinds left entry files behind...
        assert list((tmp_path / "tlm-delays").iterdir())
        assert list((tmp_path / "tlm-gensrc").iterdir())
        # ... and a cold process (fresh memory, same directory) reuses the
        # annotation and generated source without re-running those stages.
        fresh = ArtifactStore(directory=str(tmp_path))
        model, report = _generate(builder, fresh)
        assert report.stage_misses["annotate"] == 0
        assert report.stage_misses["codegen"] == 0
        assert report.stage_misses["frontend"] > 0  # IR is memory-only
        assert _snapshot(model) == _snapshot(baseline)
        assert (model.run().makespan_cycles
                == baseline.run().makespan_cycles)

    def _mangle(self, tmp_path, mutate):
        for kind_dir in (tmp_path / "tlm-delays", tmp_path / "tlm-gensrc"):
            for path in kind_dir.iterdir():
                mutate(path)

    def test_corrupted_entries_rebuild_cleanly(self, tmp_path):
        builder = APP_DESIGNS["kernels"]
        baseline, _ = _generate(builder, ArtifactStore(str(tmp_path)))
        self._mangle(tmp_path, lambda p: p.write_text("{truncated"))
        model, report = _generate(
            builder, ArtifactStore(directory=str(tmp_path)))
        assert report.stage_hits["annotate"] == 0  # nothing salvaged
        assert _snapshot(model) == _snapshot(baseline)
        assert (model.run().makespan_cycles
                == baseline.run().makespan_cycles)

    def test_stale_version_entries_rebuild_cleanly(self, tmp_path):
        builder = APP_DESIGNS["kernels"]
        baseline, _ = _generate(builder, ArtifactStore(str(tmp_path)))

        def stale(path):
            data = json.loads(path.read_text())
            data["kind_version"] = 999
            path.write_text(json.dumps(data))

        self._mangle(tmp_path, stale)
        model, report = _generate(
            builder, ArtifactStore(directory=str(tmp_path)))
        assert report.stage_hits["annotate"] == 0
        assert _snapshot(model) == _snapshot(baseline)
        assert (model.run().makespan_cycles
                == baseline.run().makespan_cycles)
