"""Unit tests for platform/design descriptions."""

import pytest

from repro.pum import dct_hw, microblaze
from repro.rtos import RTOSModel
from repro.tlm import Design, PlatformError

SRC = "void main(void) { }"


class TestConstruction:
    def test_basic_design(self):
        design = Design("d")
        design.add_pe("cpu", microblaze())
        design.add_process("p", SRC, "main", "cpu")
        design.validate()
        assert design.pes["cpu"].pum.name == "MicroBlaze"

    def test_duplicate_pe_rejected(self):
        design = Design("d")
        design.add_pe("cpu", microblaze())
        with pytest.raises(PlatformError):
            design.add_pe("cpu", dct_hw())

    def test_duplicate_process_rejected(self):
        design = Design("d")
        design.add_pe("cpu", microblaze())
        design.add_process("p", SRC, "main", "cpu")
        with pytest.raises(PlatformError):
            design.add_process("p", SRC, "main", "cpu")

    def test_process_on_unknown_pe_rejected(self):
        design = Design("d")
        with pytest.raises(PlatformError):
            design.add_process("p", SRC, "main", "ghost")

    def test_channel_on_unknown_bus_rejected(self):
        design = Design("d")
        with pytest.raises(PlatformError):
            design.add_channel(1, "c", "nobus")

    def test_duplicate_channel_id_rejected(self):
        design = Design("d")
        design.add_bus("b")
        design.add_channel(1, "c1", "b")
        with pytest.raises(PlatformError):
            design.add_channel(1, "c2", "b")

    def test_duplicate_bus_rejected(self):
        design = Design("d")
        design.add_bus("b")
        with pytest.raises(PlatformError):
            design.add_bus("b")


class TestValidation:
    def test_empty_design_rejected(self):
        with pytest.raises(PlatformError):
            Design("d").validate()

    def test_idle_pe_rejected(self):
        design = Design("d")
        design.add_pe("cpu", microblaze())
        design.add_pe("hw", dct_hw())
        design.add_process("p", SRC, "main", "cpu")
        with pytest.raises(PlatformError):
            design.validate()

    def test_shared_pe_requires_rtos(self):
        design = Design("d")
        design.add_pe("cpu", microblaze())
        design.add_process("a", SRC, "main", "cpu")
        design.add_process("b", SRC, "main", "cpu")
        with pytest.raises(PlatformError):
            design.validate()

    def test_shared_pe_with_rtos_ok(self):
        design = Design("d")
        design.add_pe("cpu", microblaze(), rtos=RTOSModel())
        design.add_process("a", SRC, "main", "cpu")
        design.add_process("b", SRC, "main", "cpu")
        design.validate()

    def test_processes_on(self):
        design = Design("d")
        design.add_pe("cpu", microblaze(), rtos=RTOSModel())
        design.add_pe("hw", dct_hw())
        design.add_process("a", SRC, "main", "cpu")
        design.add_process("b", SRC, "main", "cpu")
        design.add_process("c", SRC, "main", "hw")
        assert {p.name for p in design.processes_on("cpu")} == {"a", "b"}

    def test_pe_cycle_time(self):
        design = Design("d")
        pe = design.add_pe("cpu", microblaze())
        assert pe.cycle_ns == 10.0  # 100 MHz
