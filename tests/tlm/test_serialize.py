"""Tests for design JSON serialisation and the CLI `tlm` command."""

import io

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.cli import main
from repro.cycle import run_pcam
from repro.pum import dct_hw, microblaze
from repro.rtos import RTOSModel
from repro.tlm import (
    Design,
    design_from_json,
    design_to_json,
    generate_tlm,
    load_design,
    save_design,
)

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def demo_design():
    design = Design("serialize-demo")
    design.add_pe("cpu", microblaze(8192, 4096),
                  rtos=RTOSModel(context_switch_cycles=200))
    design.add_pe("hw", dct_hw())
    design.add_bus("bus0", words_per_cycle=2, arbitration_cycles=3)
    design.add_channel(1, "req", "bus0")
    design.add_channel(2, "rsp", "bus0")
    design.add_process("driver", """
    int b[4];
    int main(void) {
      for (int i = 0; i < 4; i++) b[i] = i;
      send(1, b, 4);
      recv(2, b, 4);
      return b[0] + b[3];
    }""", "main", "cpu")
    design.add_process("idle", "void main(void) { }", "main", "cpu")
    design.add_process("echo", """
    int b[4];
    void main(void) {
      recv(1, b, 4);
      for (int i = 0; i < 4; i++) b[i] = b[i] + 10;
      send(2, b, 4);
    }""", "main", "hw")
    return design


class TestRoundTrip:
    def test_structural_round_trip(self):
        original = demo_design()
        restored = design_from_json(design_to_json(original))
        assert restored.name == original.name
        assert set(restored.pes) == set(original.pes)
        assert set(restored.channels) == set(original.channels)
        assert set(restored.processes) == set(original.processes)
        assert restored.pes["cpu"].rtos.context_switch_cycles == 200
        assert restored.pes["hw"].rtos is None
        bus = restored.buses["bus0"]
        assert (bus.words_per_cycle, bus.arbitration_cycles) == (2, 3)

    def test_behavioural_round_trip(self):
        original = demo_design()
        restored = design_from_json(design_to_json(original))
        a = generate_tlm(original, timed=True).run()
        b = generate_tlm(restored, timed=True).run()
        assert a.makespan_cycles == b.makespan_cycles
        assert (a.process("driver").return_value
                == b.process("driver").return_value)

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))
        restored = load_design(str(path))
        assert restored.name == "serialize-demo"

    def test_mp3_design_round_trips_through_pcam(self, tmp_path):
        design, _ = build_design("SW+1", SMALL, n_frames=1, seed=5)
        path = tmp_path / "mp3.json"
        save_design(design, str(path))
        restored = load_design(str(path))
        assert (run_pcam(restored).pe("decoder").return_value
                == run_pcam(design).pe("decoder").return_value)


class TestCLITlm:
    def test_cli_runs_design_file(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))
        out = io.StringIO()
        code = main(["tlm", str(path)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "serialize-demo" in text
        assert "driver" in text and "echo" in text
        assert "makespan" in text

    def test_cli_functional_mode(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))
        out = io.StringIO()
        assert main(["tlm", str(path), "--functional"], out=out) == 0
        assert "functional TLM" in out.getvalue()

    def test_cli_simulate_alias(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))
        out = io.StringIO()
        assert main(["simulate", str(path)], out=out) == 0
        assert "makespan" in out.getvalue()

    def test_cli_kernel_stats(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))
        out = io.StringIO()
        assert main(["simulate", str(path), "--kernel-stats"], out=out) == 0
        text = out.getvalue()
        assert "engine=coroutine" in text
        assert "activations" in text and "fast-path" in text

    def test_cli_engines_report_same_makespan(self, tmp_path):
        path = tmp_path / "design.json"
        save_design(demo_design(), str(path))

        def makespan_line(argv):
            out = io.StringIO()
            assert main(argv, out=out) == 0
            return out.getvalue().splitlines()[0]

        fast = makespan_line(["simulate", str(path)])
        slow = makespan_line(["simulate", str(path), "--engine", "thread",
                              "--no-optimize"])
        quantum = makespan_line(["simulate", str(path), "--granularity",
                                 "quantum", "--quantum", "4"])
        assert "makespan" in fast
        # identical makespans; only the wall-clock suffix may differ
        assert fast.split("cycles")[0] == slow.split("cycles")[0]
        assert fast.split("cycles")[0] == quantum.split("cycles")[0]
