"""Unit tests for the TLM generator and executable model."""

import pytest

from repro.pum import dct_hw, microblaze
from repro.tlm import Design, generate_tlm
from repro.simkernel import DeadlockError

PING = """
int buf[4];
int main(void) {
  for (int r = 0; r < 5; r++) {
    for (int i = 0; i < 4; i++) buf[i] = r * 4 + i;
    send(1, buf, 4);
    recv(2, buf, 4);
  }
  return buf[0] + buf[3];
}
"""

PONG = """
int buf[4];
void main(void) {
  for (int r = 0; r < 5; r++) {
    recv(1, buf, 4);
    for (int i = 0; i < 4; i++) buf[i] = buf[i] + 100;
    send(2, buf, 4);
  }
}
"""


def ping_pong_design():
    design = Design("pingpong")
    design.add_pe("cpu", microblaze(8192, 4096))
    design.add_pe("hw", dct_hw())
    design.add_bus("bus0")
    design.add_channel(1, "fwd", "bus0")
    design.add_channel(2, "bwd", "bus0")
    design.add_process("ping", PING, "main", "cpu")
    design.add_process("pong", PONG, "main", "hw")
    return design


class TestGeneration:
    def test_functional_tlm_runs(self):
        result = generate_tlm(ping_pong_design(), timed=False).run()
        assert result.process("ping").return_value == 116 + 119

    def test_timed_tlm_same_result_with_time(self):
        result = generate_tlm(ping_pong_design(), timed=True).run()
        assert result.process("ping").return_value == 116 + 119
        assert result.makespan_cycles > 0
        assert result.process("ping").cycles > 0
        assert result.process("pong").cycles > 0

    def test_functional_tlm_accumulates_no_cycles(self):
        result = generate_tlm(ping_pong_design(), timed=False).run()
        assert result.process("ping").cycles == 0

    def test_timed_slower_than_functional_in_sim_time(self):
        func = generate_tlm(ping_pong_design(), timed=False).run()
        timed = generate_tlm(ping_pong_design(), timed=True).run()
        assert timed.end_time_ns > func.end_time_ns

    def test_report_fields(self):
        model = generate_tlm(ping_pong_design(), timed=True)
        report = model.report
        assert report.annotation_seconds > 0
        assert report.frontend_seconds > 0
        assert set(report.per_process) == {"ping", "pong"}
        assert report.per_process["ping"].n_blocks > 0
        assert report.total_seconds >= report.annotation_seconds

    def test_untimed_report_has_no_annotation(self):
        model = generate_tlm(ping_pong_design(), timed=False)
        assert model.report.annotation_seconds == 0.0
        assert model.report.per_process["ping"] is None

    def test_transaction_counts(self):
        result = generate_tlm(ping_pong_design(), timed=True).run()
        assert result.process("ping").transactions == 10
        assert result.process("pong").transactions == 10

    def test_rerun_is_repeatable(self):
        model = generate_tlm(ping_pong_design(), timed=True)
        first = model.run()
        second = model.run()
        assert first.makespan_cycles == second.makespan_cycles
        assert (first.process("ping").return_value
                == second.process("ping").return_value)

    def test_granularity_preserves_results(self):
        txn = generate_tlm(ping_pong_design(), timed=True,
                           granularity="transaction").run()
        blk = generate_tlm(ping_pong_design(), timed=True,
                           granularity="block").run()
        assert (txn.process("ping").return_value
                == blk.process("ping").return_value)
        assert txn.process("ping").cycles == blk.process("ping").cycles
        # Block granularity can only refine event interleaving, and here the
        # final makespans agree.
        assert blk.makespan_cycles == txn.makespan_cycles

    def test_mismatched_protocol_deadlocks(self):
        design = Design("broken")
        design.add_pe("cpu", microblaze())
        design.add_bus("bus0")
        design.add_channel(1, "c", "bus0")
        design.add_process("p", """
        int buf[2];
        int main(void) { recv(1, buf, 2); return 0; }
        """, "main", "cpu")
        model = generate_tlm(design, timed=False)
        with pytest.raises(DeadlockError):
            model.run()

    def test_bus_contention_extends_makespan(self):
        def design_with(arbitration):
            design = Design("arb%d" % arbitration)
            design.add_pe("cpu", microblaze(8192, 4096))
            design.add_pe("hw", dct_hw())
            design.add_bus("bus0", arbitration_cycles=arbitration)
            design.add_channel(1, "fwd", "bus0")
            design.add_channel(2, "bwd", "bus0")
            design.add_process("ping", PING, "main", "cpu")
            design.add_process("pong", PONG, "main", "hw")
            return design

        cheap = generate_tlm(design_with(0), timed=True).run()
        costly = generate_tlm(design_with(50), timed=True).run()
        assert costly.makespan_cycles > cheap.makespan_cycles


class TestGenerationReportTimers:
    def test_total_is_sum_of_disjoint_stage_timers(self):
        model = generate_tlm(ping_pong_design(), timed=True)
        report = model.report
        assert set(report.stage_seconds) == {
            "frontend", "annotate", "codegen",
        }
        # Each stage runs in its own perf_counter window, so the total is
        # exactly the sum — annotation is no longer folded into frontend.
        assert report.total_seconds == pytest.approx(
            sum(report.stage_seconds.values())
        )
        assert report.total_seconds == pytest.approx(
            report.frontend_seconds + report.annotation_seconds
            + report.codegen_seconds
        )
        assert all(s >= 0.0 for s in report.stage_seconds.values())

    def test_stage_counters_cover_every_process(self):
        model = generate_tlm(ping_pong_design(), timed=True)
        report = model.report
        for stage in ("frontend", "annotate", "codegen"):
            lookups = report.stage_hits[stage] + report.stage_misses[stage]
            assert lookups == len(model.design.processes)

    def test_summary_round_trips_plain_data(self):
        import json

        model = generate_tlm(ping_pong_design(), timed=True)
        summary = model.report.summary()
        decoded = json.loads(json.dumps(summary))
        assert decoded == summary
        assert decoded["total_seconds"] == pytest.approx(
            model.report.total_seconds
        )

    def test_merge_generation_summaries(self):
        from repro.tlm import merge_generation_summaries

        reports = [
            generate_tlm(ping_pong_design(), timed=True).report
            for _ in range(2)
        ]
        merged = merge_generation_summaries(
            [r.summary() for r in reports] + [None]
        )
        assert merged["points"] == 2
        assert merged["stage_hits"]["frontend"] == sum(
            r.stage_hits["frontend"] for r in reports
        )
        assert merged["total_seconds"] == pytest.approx(
            sum(r.total_seconds for r in reports)
        )
