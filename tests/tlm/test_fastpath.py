"""Equivalence tests for the simulation fast path.

The coroutine engine, the optimizing code generator and the quantum
granularity are pure speed features: every combination must report the
same ``makespan_cycles`` as the original thread engine running
unoptimized code.
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.cycle import run_pcam
from repro.tlm import generate_tlm

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def small_design(variant="SW+2"):
    design, _ = build_design(variant, SMALL, n_frames=1, seed=3)
    return design


def makespan(design, **kwargs):
    return generate_tlm(design, timed=True, **kwargs).run().makespan_cycles


class TestEngineEquivalence:
    @pytest.mark.parametrize("variant", ["SW", "SW+2"])
    def test_engines_and_optimizer_bit_identical(self, variant):
        design = small_design(variant)
        baseline = makespan(design, engine="thread", optimize=False)
        assert makespan(design, engine="thread", optimize=True) == baseline
        assert makespan(design, engine="coroutine", optimize=False) == baseline
        assert makespan(design, engine="coroutine", optimize=True) == baseline

    def test_granularities_bit_identical(self):
        design = small_design()
        reference = makespan(design, granularity="transaction")
        assert makespan(design, granularity="block") == reference
        assert makespan(design, granularity="quantum") == reference
        assert makespan(design, granularity="quantum", quantum=3) == reference
        assert makespan(design, granularity="quantum", quantum=1000) == reference

    def test_functional_results_identical_across_engines(self):
        design = small_design()
        a = generate_tlm(design, timed=False, engine="coroutine").run()
        b = generate_tlm(design, timed=False, engine="thread").run()
        assert (a.process("decoder").return_value
                == b.process("decoder").return_value)

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            generate_tlm(small_design(), timed=True, engine="fiber")


class TestKernelStatsSurface:
    def test_tlm_result_carries_kernel_stats(self):
        result = generate_tlm(small_design(), timed=True).run()
        stats = result.kernel_stats
        assert stats["engine"] == "coroutine"
        assert stats["activations"] > 0
        assert stats["events_scheduled"] > 0
        assert stats["channel_fastpath_hits"] > 0

    def test_thread_engine_reports_same_counters(self):
        design = small_design()
        fast = generate_tlm(design, timed=True, engine="coroutine").run()
        slow = generate_tlm(design, timed=True, engine="thread").run()
        for key in ("activations", "events_scheduled",
                    "channel_fastpath_hits"):
            assert fast.kernel_stats[key] == slow.kernel_stats[key]
        assert slow.kernel_stats["engine"] == "thread"

    def test_board_result_carries_kernel_stats(self):
        result = run_pcam(small_design())
        assert result.kernel_stats["activations"] > 0
        assert result.kernel_stats["events_scheduled"] > 0
