"""Unit tests for the executable TLM model internals."""

import pytest

from repro.pum import microblaze
from repro.simkernel import SimulationError
from repro.tlm import Design, generate_tlm
from repro.tlm.model import ChannelBinding, ProcessResult, TLMResult


class TestResultTypes:
    def test_makespan_rounds_to_cycles(self):
        result = TLMResult("d", True, 1234.9, 0.1, {}, cycle_ns=10.0)
        assert result.makespan_cycles == 123

    def test_total_computation_cycles(self):
        processes = {
            "a": ProcessResult("a", "cpu", 100, 2, None),
            "b": ProcessResult("b", "hw", 50, 2, 7),
        }
        result = TLMResult("d", True, 0.0, 0.0, processes, 10.0)
        assert result.total_computation_cycles() == 150
        assert result.process("b").return_value == 7

    def test_repr_compact(self):
        result = TLMResult("demo", True, 100.0, 0.5, {}, 10.0)
        assert "demo" in repr(result)

    def test_utilization(self):
        processes = {
            "busy": ProcessResult("busy", "cpu", 80, 0, None),
            "idle": ProcessResult("idle", "hw", 20, 0, None),
        }
        result = TLMResult("d", True, 1000.0, 0.0, processes, 10.0)
        util = result.utilization()
        assert util["busy"] == pytest.approx(0.8)
        assert util["idle"] == pytest.approx(0.2)

    def test_utilization_zero_makespan(self):
        processes = {"p": ProcessResult("p", "cpu", 0, 0, None)}
        result = TLMResult("d", False, 0.0, 0.0, processes, 10.0)
        assert result.utilization() == {"p": 0.0}

    def test_mp3_offload_shifts_utilization(self):
        from repro.apps.mp3 import Mp3Params, build_design
        from repro.tlm import generate_tlm

        small = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)
        design, _ = build_design("SW+4", small, n_frames=1, seed=3)
        util = generate_tlm(design, timed=True).run().utilization()
        # The CPU no longer saturates the platform; HW units do real work.
        assert util["decoder"] < 1.0
        assert any(
            value > 0.05 for name, value in util.items() if name != "decoder"
        )


class TestChannelBinding:
    def test_binding_routes_by_id(self):
        class FakeChannel:
            def __init__(self):
                self.sent = []

            def send(self, process, values):
                self.sent.append(values)

            def recv(self, process, count):
                return list(range(count))

        class FakeMap:
            def __init__(self, chan):
                self.chan = chan

            def get(self, chan_id):
                assert chan_id == 5
                return self.chan

        chan = FakeChannel()
        binding = ChannelBinding(FakeMap(chan))
        binding.send(None, 5, [1, 2])
        assert chan.sent == [[1, 2]]
        assert binding.recv(None, 5, 3) == [0, 1, 2]


class TestFailureInjection:
    def _design_with(self, source):
        design = Design("fail")
        design.add_pe("cpu", microblaze())
        design.add_process("p", source, "main", "cpu")
        return design

    def test_runtime_error_in_process_surfaces(self):
        # Division by zero inside generated code must propagate as a
        # simulation error naming the process, not hang the kernel.
        model = generate_tlm(self._design_with("""
        int main(void) {
          int z = 0;
          return 1 / z;
        }"""), timed=False)
        with pytest.raises(SimulationError) as info:
            model.run()
        assert "p" in str(info.value)

    def test_failure_is_repeatable_not_sticky(self):
        model = generate_tlm(self._design_with("""
        int main(void) { int z = 0; return 1 / z; }"""), timed=False)
        for _ in range(2):
            with pytest.raises(SimulationError):
                model.run()

    def test_out_of_range_channel_id(self):
        model = generate_tlm(self._design_with("""
        int b[2];
        int main(void) { send(42, b, 2); return 0; }"""), timed=False)
        with pytest.raises(SimulationError):
            model.run()

    def test_model_reusable_after_until_cutoff(self):
        design = self._design_with("""
        int main(void) {
          int s = 0;
          for (int i = 0; i < 100; i++) s += i;
          return s;
        }""")
        model = generate_tlm(design, timed=True)
        full = model.run()
        cut = model.run(until=1.0)
        assert cut.end_time_ns <= 1.0
        again = model.run()
        assert again.makespan_cycles == full.makespan_cycles
