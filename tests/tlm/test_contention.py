"""Dynamic bus contention: arbitration policies, counters and fast path.

Unit level: :class:`ArbitratedBus` grant order per policy, queue counters,
and the uncontended fast path's arithmetic identity with the plain bus.
Model level: policy-less designs keep their bit-exact legacy makespans,
arbitrated designs stay deterministic across schedulers / engines /
granularities and under fault injection, and simtrace recording refuses
load-dependent arbitration (a recorded trace would bake one grant order in).
"""

import pytest

from repro.apps.mp3 import Mp3Params, build_design
from repro.faults import ChannelFault, FaultScenario
from repro.pum import dct_hw, microblaze
from repro.simkernel import Bus, Kernel, SimulationError, TraceRecorder
from repro.tlm import (
    ArbitratedBus,
    ContentionError,
    Design,
    build_bus,
    collect_bus_stats,
    generate_tlm,
)
from repro.tlm.platform import BusDecl

SMALL = Mp3Params(n_subbands=4, n_slots=4, n_phases=4, n_alias=2)


def _contenders(kernel, bus, names, n_words=8, order=None):
    """One generator master per name, all requesting the bus at t=0."""
    order = order if order is not None else []

    def master(name):
        def body(p):
            yield from bus.occupy_gen(p, n_words)
            order.append(name)
        return body

    for name in names:
        kernel.add_process(name, master(name))
    return order


class TestGrantPolicies:
    def test_unknown_policy_rejected(self):
        kernel = Kernel()
        with pytest.raises(ContentionError):
            ArbitratedBus(kernel, "b", policy="lottery")

    def test_fifo_grants_in_arrival_order(self):
        kernel = Kernel()
        bus = ArbitratedBus(kernel, "b", policy="fifo")
        order = _contenders(kernel, bus, ["m0", "m1", "m2", "m3"])
        kernel.run()
        assert order == ["m0", "m1", "m2", "m3"]

    def test_priority_grants_most_urgent_first(self):
        kernel = Kernel()
        bus = ArbitratedBus(kernel, "b", policy="priority",
                            priorities={"m1": 1, "m3": 2})
        order = _contenders(kernel, bus, ["m0", "m1", "m2", "m3"])
        kernel.run()
        # m0 wins the free bus at t=0; then priority 1, 2, then the
        # DEFAULT_PRIORITY master by arrival.
        assert order == ["m0", "m1", "m3", "m2"]

    def test_rr_cycles_over_master_names(self):
        kernel = Kernel()
        bus = ArbitratedBus(kernel, "b", policy="rr")

        def master(name, repeats):
            def body(p):
                for _ in range(repeats):
                    yield from bus.occupy_gen(p, 4)
                    order.append(name)
            return body

        order = []
        kernel.add_process("a", master("a", 3))
        kernel.add_process("b", master("b", 3))
        kernel.add_process("c", master("c", 3))
        kernel.run()
        # After "a" takes the free bus, round-robin alternates fairly
        # instead of letting one master monopolise.
        assert order == ["a", "b", "c"] * 3

    def test_counters_reflect_queueing(self):
        kernel = Kernel()
        bus = ArbitratedBus(kernel, "b", policy="fifo", cycle_ns=10.0)
        _contenders(kernel, bus, ["m0", "m1", "m2"], n_words=10)
        end = kernel.run()
        stats = bus.bus_stats()
        assert stats["policy"] == "fifo"
        assert stats["grants"] == 3
        assert stats["queued_grants"] == 2  # m1 and m2 waited
        assert stats["max_queue"] == 2
        # m1 waited one transfer, m2 two: 1*T + 2*T cycles of stall.
        transfer_cycles = int(bus.transfer_time(10) / bus.cycle_ns)
        assert stats["stall_cycles"] == 3 * transfer_cycles
        assert stats["busy_cycles"] == 3 * transfer_cycles
        assert stats["utilization"] == pytest.approx(
            3 * transfer_cycles * 10.0 / end)

    def test_uncontended_fast_path_matches_plain_bus(self):
        ends = {}
        for build in ("plain", "arbitrated"):
            kernel = Kernel()
            if build == "plain":
                bus = Bus(kernel, "b", cycle_ns=10.0, words_per_cycle=2,
                          arbitration_cycles=3)
            else:
                bus = ArbitratedBus(kernel, "b", cycle_ns=10.0,
                                    words_per_cycle=2, arbitration_cycles=3,
                                    policy="fifo")

            def body(p):
                for n_words in (1, 7, 32, 5):
                    yield from bus.occupy_gen(p, n_words)
                    yield 13.0

            kernel.add_process("solo", body)
            ends[build] = kernel.run()
        assert ends["plain"] == ends["arbitrated"]

    def test_one_wake_per_grant(self):
        """k queued masters cost O(k) activations, not the plain bus's
        O(k^2) retry herd."""
        k = 50
        kernel = Kernel()
        bus = ArbitratedBus(kernel, "b", policy="fifo")
        _contenders(kernel, bus, ["m%02d" % i for i in range(k)])
        kernel.run()
        # Each master: one start + one grant/finish activation (plus the
        # winner's single pass) — comfortably linear in k.
        assert kernel.kernel_stats()["activations"] <= 3 * k


class TestBusFactory:
    def test_policy_none_builds_plain_bus(self):
        kernel = Kernel()
        bus = build_bus(kernel, BusDecl("b0", words_per_cycle=2))
        assert type(bus) is Bus

    def test_policy_builds_arbitrated_bus(self):
        kernel = Kernel()
        decl = BusDecl("b0", policy="priority", priorities={"m": 1})
        bus = build_bus(kernel, decl)
        assert isinstance(bus, ArbitratedBus)
        assert bus.priorities == {"m": 1}

    def test_collect_skips_plain_buses(self):
        kernel = Kernel()
        buses = {
            "plain": build_bus(kernel, BusDecl("plain")),
            "arb": build_bus(kernel, BusDecl("arb", policy="rr")),
        }
        stats = collect_bus_stats(buses)
        assert set(stats) == {"arb"}
        assert stats["arb"]["policy"] == "rr"


def _two_pair_design(policy=None, priorities=None):
    """Two independent request/response pairs sharing one bus, so both
    drivers hit the bus at the same instants."""
    design = Design("contention-%s" % (policy or "static"))
    design.add_pe("cpu0", microblaze(8192, 4096))
    design.add_pe("cpu1", microblaze(8192, 4096))
    design.add_pe("hw0", dct_hw())
    design.add_pe("hw1", dct_hw())
    design.add_bus("bus0", policy=policy, priorities=priorities)
    for pair in (0, 1):
        req, rsp = 1 + 2 * pair, 2 + 2 * pair
        design.add_channel(req, "req%d" % pair, "bus0")
        design.add_channel(rsp, "rsp%d" % pair, "bus0")
        design.add_process("drv%d" % pair, """
        int b[64];
        int main(void) {
          for (int i = 0; i < 64; i++) b[i] = i;
          send(%d, b, 64);
          recv(%d, b, 64);
          return b[0];
        }""" % (req, rsp), "main", "cpu%d" % pair)
        design.add_process("srv%d" % pair, """
        int b[64];
        void main(void) {
          recv(%d, b, 64);
          send(%d, b, 64);
        }""" % (req, rsp), "main", "hw%d" % pair)
    return design


class TestModelContention:
    def test_policyless_design_reports_no_bus_stats(self):
        result = generate_tlm(_two_pair_design()).run()
        assert result.bus_stats == {}

    def test_arbitrated_design_reports_counters(self):
        result = generate_tlm(_two_pair_design(policy="fifo")).run()
        stats = result.bus_stats["bus0"]
        assert stats["policy"] == "fifo"
        assert stats["grants"] > 0
        assert stats["queued_grants"] > 0  # the pairs really collide
        assert stats["stall_cycles"] > 0

    @pytest.mark.parametrize("engine", ["coroutine", "thread"])
    @pytest.mark.parametrize("granularity", ["transaction", "block"])
    def test_deterministic_across_schedulers(self, engine, granularity):
        seen = set()
        grants = set()
        for scheduler in ("heap", "wheel"):
            model = generate_tlm(_two_pair_design(policy="fifo"),
                                 granularity=granularity, engine=engine)
            result = model.run(scheduler=scheduler)
            assert result.makespan_cycles > 0
            seen.add(result.makespan_cycles)
            grants.add(tuple(sorted(result.bus_stats["bus0"].items())))
        assert len(seen) == 1
        assert len(grants) == 1

    def test_priorities_change_outcome_not_makespan_validity(self):
        fifo = generate_tlm(_two_pair_design(policy="fifo")).run()
        prio = generate_tlm(_two_pair_design(
            policy="priority", priorities={"drv1": 1, "srv1": 1},
        )).run()
        # Same total bus work either way; only the grant order differs.
        assert (fifo.bus_stats["bus0"]["grants"]
                == prio.bus_stats["bus0"]["grants"])

    def test_contention_counters_under_fault_injection(self):
        """Satellite: fault-delayed channels still account contention, and
        the composition stays bit-deterministic."""
        # Delay both request channels so the critical path cannot absorb
        # the fault in the other pair's slack.
        slow = FaultScenario("slow-req", faults=[
            ChannelFault("delay", "req0", cycles=200),
            ChannelFault("delay", "req1", cycles=200),
        ])
        runs = []
        for _ in range(2):
            result = generate_tlm(_two_pair_design(policy="fifo")).run(
                faults=slow)
            assert result.fault_stats["total_events"] > 0
            runs.append((result.makespan_cycles,
                         tuple(sorted(result.bus_stats["bus0"].items()))))
        assert runs[0] == runs[1]
        clean = generate_tlm(_two_pair_design(policy="fifo")).run()
        assert runs[0][0] > clean.makespan_cycles

    def test_recording_rejects_contended_arbitration(self):
        """A simtrace of a *contended* arbitrated run would freeze one
        load-dependent grant order into the trace — the recording aborts
        at the first queued grant (uncontended runs record fine; see
        tests/simtrace)."""
        model = generate_tlm(_two_pair_design(policy="fifo"))
        with pytest.raises(SimulationError) as exc_info:
            model.run(record=TraceRecorder())
        assert "load-dependent" in str(exc_info.value)

    def test_recording_still_allowed_for_static_designs(self):
        result = generate_tlm(_two_pair_design()).run(record=TraceRecorder())
        assert result.makespan_cycles > 0


class TestMp3FastPath:
    def test_single_master_mp3_makespan_unchanged_by_arbiter(self):
        """The paper pipeline's SW+1 design is effectively uncontended per
        channel; attaching an arbiter must not move the makespan by a single
        cycle (the O(1) fast path's arithmetic is the plain bus's)."""
        makespans = set()
        for policy in (None, "fifo"):
            design, _ = build_design("SW+1", SMALL, n_frames=1, seed=3)
            for bus in design.buses.values():
                bus.policy = policy
            result = generate_tlm(design).run()
            makespans.add(result.makespan_cycles)
        assert len(makespans) == 1
